//! # tako-sim — simulation kernel for the täkō reproduction
//!
//! This crate provides the shared infrastructure used by every other crate
//! in the workspace:
//!
//! * [`config`] — the full system configuration (Table 3 of the paper),
//!   decomposed into per-component sub-configs so substrate crates depend
//!   only on what they model.
//! * [`stats`] — a flat, cheap counter registry plus per-phase counters and
//!   latency histograms; every simulated event increments counters here.
//! * [`energy`] — the dynamic-energy model: post-hoc conversion from event
//!   counters to picojoules, following the orderings of the parameters the
//!   paper cites (DRAM ≫ LLC > L2 > L1 > engine PE; core instruction ≫
//!   engine op).
//! * [`rng`] — a tiny deterministic SplitMix64/xoshiro256** implementation
//!   so every experiment is reproducible bit-for-bit without depending on
//!   `rand`'s version-dependent streams.
//! * [`fault`] — seeded, deterministic fault plans (misbehaving-Morph
//!   scenarios, MSHR pressure, delayed DRAM) that the hierarchy injects
//!   at configured cycle points; inert unless armed.
//! * [`parallel`] — a std-only fork-join worker pool with deterministic,
//!   input-ordered result collection, used by the benchmark harnesses to
//!   fan independent simulations across cores.
//! * [`checkpoint`] — the versioned, checksummed snapshot format and the
//!   [`checkpoint::Snapshot`] trait every stateful component implements;
//!   resume-from-snapshot is byte-identical to an uninterrupted run.
//! * [`storage`] — the crash-safe persistence fabric: a [`storage::Storage`]
//!   trait with a real-filesystem backend (atomic temp+sync+rename writes)
//!   and a deterministic fault-injecting backend that can crash at the
//!   N-th I/O site, tear a write, drop a rename, duplicate an append, or
//!   flip a bit — the substrate the campaign journal's recovery proofs
//!   sweep over.
//! * [`supervise`] — thread-local deadline/triage plumbing between the
//!   supervised campaign runner and the hierarchy's watchdog epochs.
//! * [`trace`] — the observability layer: bounded event tracing with
//!   Chrome `trace_event` export, per-epoch interval metrics, and
//!   pipeline-stage profiling spans; zero overhead unless armed.
//!
//! Time is measured in [`Cycle`]s (2.4 GHz in the default configuration).
//!
//! # Example
//!
//! ```
//! use tako_sim::config::SystemConfig;
//! use tako_sim::stats::{Counter, Stats};
//!
//! let cfg = SystemConfig::default_16core();
//! assert_eq!(cfg.tiles, 16);
//!
//! let mut stats = Stats::new();
//! stats.bump(Counter::DramRead);
//! assert_eq!(stats.get(Counter::DramRead), 1);
//! ```

pub mod checkpoint;
pub mod config;
pub mod digest;
pub mod energy;
pub mod event;
pub mod fault;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod storage;
pub mod supervise;
pub mod trace;

/// A simulated clock cycle. The default system runs at 2.4 GHz.
pub type Cycle = u64;

/// Identifier of a tile (core + L2 + LLC bank + engine) in the mesh.
pub type TileId = usize;
