//! Deterministic snapshot serialization for checkpoint/resume.
//!
//! Long campaigns must survive preemption: a panic, an OS kill, or a
//! deadline enforcement action may interrupt a simulation that has run
//! for minutes. This module provides the wire format every component of
//! the stack serializes through, with a hard contract:
//!
//! > **Resume-from-snapshot is byte-identical to an uninterrupted run.**
//! > Restoring a snapshot into a freshly built system (same
//! > configuration, same registration sequence) and continuing must
//! > produce exactly the cycles, counters, energy bits, and output the
//! > uninterrupted run produces.
//!
//! The format is deliberately simple and offline-auditable:
//!
//! ```text
//! envelope := magic("TAKOSNP\0") version:u32 payload_len:u64
//!             sha256(payload):[u8;32] payload
//! payload  := section*            (each component writes one section)
//! section  := name_len:u16 name:[u8] fields…
//! ```
//!
//! * **Versioned** — [`SNAP_VERSION`] is bumped on any layout change; a
//!   reader refuses a mismatched version rather than misinterpreting
//!   bytes.
//! * **Checksummed** — the payload digest (via [`crate::digest`])
//!   detects truncated or corrupted snapshot files before any state is
//!   overwritten.
//! * **Canonical** — unordered containers (hash maps, binary heaps) are
//!   serialized in sorted order, so the same logical state always
//!   produces the same bytes and snapshot ids are stable.
//!
//! Components implement [`Snapshot`]: `save` appends the component's
//! mutable state, `load` overwrites it in a freshly *rebuilt* object.
//! Structure that is derivable from the configuration (array geometry,
//! fault-plan events, Morph code) is **not** serialized — resume
//! reconstructs the system from the same `SystemConfig` and the same
//! registration sequence, then `load` replays only the mutable state on
//! top. Section names make a mismatch fail loudly ([`SnapError::Section`])
//! instead of silently shearing fields.
//!
//! [`Record`] is the sibling trait for *campaign unit* checkpoints: the
//! benchmark runner journals each completed unit of experiment work
//! (value-level, not machine-level) so an interrupted experiment resumes
//! without recomputing finished units. `f64` round-trips through its
//! exact bit pattern, preserving byte-identical rendered output.

use std::fmt;

use crate::digest::Sha256;

/// Leading magic bytes of a snapshot envelope.
pub const SNAP_MAGIC: [u8; 8] = *b"TAKOSNP\0";

/// Snapshot format version; bump on any serialized-layout change.
/// Version 2: the hierarchy section gained the optional observability
/// observer (event ring, interval metrics, stage profile).
/// Version 3: cache tag arrays serialize their structure-of-arrays
/// storage field-by-field (per-way rrpv/lru/flag planes) instead of the
/// old per-line record stream.
/// Version 4: the watchdog diagnostic snapshot gained the blocked
/// line and its LLC `(bank, set)` location.
pub const SNAP_VERSION: u32 = 4;

/// Errors surfaced while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// The byte stream ended before the expected field.
    Truncated,
    /// The envelope does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The envelope was written by an incompatible format version.
    BadVersion {
        /// Version found in the envelope.
        found: u32,
    },
    /// The payload digest does not match the envelope checksum.
    BadChecksum,
    /// A section header named a different component than expected —
    /// the snapshot and the rebuilt system disagree on structure.
    Section {
        /// Section name the reader expected next.
        expected: String,
        /// Section name found in the stream.
        found: String,
    },
    /// The snapshot's recorded structure does not match the rebuilt
    /// system (different config fingerprint, registration sequence,
    /// or container geometry).
    StateMismatch(String),
    /// Bytes remained after the last expected field.
    TrailingBytes,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a tako snapshot (bad magic)"),
            SnapError::BadVersion { found } => write!(
                f,
                "snapshot format version {found} (this build reads {SNAP_VERSION})"
            ),
            SnapError::BadChecksum => write!(f, "snapshot payload checksum mismatch"),
            SnapError::Section { expected, found } => write!(
                f,
                "snapshot section mismatch: expected `{expected}`, found `{found}`"
            ),
            SnapError::StateMismatch(why) => {
                write!(f, "snapshot does not match the rebuilt system: {why}")
            }
            SnapError::TrailingBytes => write!(f, "trailing bytes after snapshot payload"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only writer for snapshot payload bytes.
///
/// All integers are little-endian; `f64` is written as its exact bit
/// pattern so restored values compare bitwise-equal.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The payload bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Begin a named section; the reader must expect the same name.
    pub fn section(&mut self, name: &str) {
        debug_assert!(name.len() <= u16::MAX as usize);
        self.put_u16(name.len() as u16);
        self.buf.extend_from_slice(name.as_bytes());
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append an element count (for the container about to follow).
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }
}

/// Cursor over snapshot payload bytes; every getter mirrors a
/// [`SnapWriter`] putter and fails with [`SnapError::Truncated`] when
/// the stream ends early.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from `buf` starting at the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail with [`SnapError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Expect the named section header next.
    ///
    /// # Errors
    ///
    /// [`SnapError::Section`] if a different name is found,
    /// [`SnapError::Truncated`] if the stream ends.
    pub fn section(&mut self, name: &str) -> Result<(), SnapError> {
        let len = self.get_u16()? as usize;
        let found = String::from_utf8_lossy(self.take(len)?).into_owned();
        if found == name {
            Ok(())
        } else {
            Err(SnapError::Section {
                expected: name.to_string(),
                found,
            })
        }
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `bool` (any nonzero byte is `true`).
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        Ok(self.get_u8()? != 0)
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` (written as `u64`).
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        Ok(self.get_u64()? as usize)
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.get_u64()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string (lossy).
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        Ok(String::from_utf8_lossy(self.get_bytes()?).into_owned())
    }

    /// Read an element count, verifying it against `expect` when the
    /// container's size is fixed by configuration.
    pub fn get_len(&mut self) -> Result<usize, SnapError> {
        self.get_usize()
    }

    /// Read an element count that must equal `expect`.
    ///
    /// # Errors
    ///
    /// [`SnapError::StateMismatch`] naming `what` on disagreement.
    pub fn get_len_expect(&mut self, what: &str, expect: usize) -> Result<usize, SnapError> {
        let n = self.get_len()?;
        if n != expect {
            return Err(SnapError::StateMismatch(format!(
                "{what}: snapshot has {n} elements, rebuilt system has {expect}"
            )));
        }
        Ok(n)
    }
}

/// A component whose mutable state can be captured and restored.
///
/// `save` must serialize every field that influences future simulated
/// behavior or reported results; `load` overwrites those fields in an
/// object freshly rebuilt from the same configuration. Unordered
/// containers must be written in a canonical (sorted) order so equal
/// states produce equal bytes.
pub trait Snapshot {
    /// Append this component's state to `w`.
    fn save(&self, w: &mut SnapWriter);

    /// Restore this component's state from `r`.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] from the stream, or
    /// [`SnapError::StateMismatch`] when the snapshot's structure
    /// disagrees with the rebuilt object.
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Serialize `root` into a self-describing envelope: magic, version,
/// payload length, payload checksum, payload.
pub fn encode(root: &dyn Snapshot) -> Vec<u8> {
    let mut w = SnapWriter::new();
    root.save(&mut w);
    let payload = w.into_bytes();
    let mut h = Sha256::new();
    h.update(&payload);
    let sum = h.finish();
    let mut out = Vec::with_capacity(8 + 4 + 8 + 32 + payload.len());
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&sum);
    out.extend_from_slice(&payload);
    out
}

/// Validate an envelope and return its payload slice.
///
/// # Errors
///
/// [`SnapError::BadMagic`] / [`SnapError::BadVersion`] /
/// [`SnapError::Truncated`] / [`SnapError::BadChecksum`] as each check
/// fails.
pub fn payload(envelope: &[u8]) -> Result<&[u8], SnapError> {
    const HDR: usize = 8 + 4 + 8 + 32;
    if envelope.len() < HDR {
        return Err(if envelope.len() >= 8 && envelope[..8] != SNAP_MAGIC {
            SnapError::BadMagic
        } else {
            SnapError::Truncated
        });
    }
    if envelope[..8] != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u32::from_le_bytes(envelope[8..12].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(SnapError::BadVersion { found: version });
    }
    let len = u64::from_le_bytes(envelope[12..20].try_into().unwrap()) as usize;
    if envelope.len() != HDR + len {
        return Err(SnapError::Truncated);
    }
    let sum: [u8; 32] = envelope[20..52].try_into().unwrap();
    let payload = &envelope[HDR..];
    let mut h = Sha256::new();
    h.update(payload);
    if h.finish() != sum {
        return Err(SnapError::BadChecksum);
    }
    Ok(payload)
}

/// Decode an envelope into `root`, consuming the whole payload.
///
/// # Errors
///
/// Envelope errors from [`payload`], then any [`SnapError`] raised by
/// `root.load`, then [`SnapError::TrailingBytes`] if the payload is
/// longer than `root` consumes.
pub fn decode(envelope: &[u8], root: &mut dyn Snapshot) -> Result<(), SnapError> {
    let payload = payload(envelope)?;
    let mut r = SnapReader::new(payload);
    root.load(&mut r)?;
    r.finish()
}

/// A short, stable identifier for a snapshot: the first 12 hex digits
/// of the envelope's SHA-256. Used in journal records and triage
/// bundles to say *which* checkpoint a resume should start from.
pub fn snapshot_id(envelope: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(envelope);
    h.finish_hex()[..12].to_string()
}

// ---------------------------------------------------------------------
// Campaign unit records
// ---------------------------------------------------------------------

/// A value that can be journaled as one completed unit of experiment
/// work and replayed on resume.
///
/// Implementations must round-trip exactly: `decode(encode(x)) == x`
/// bit-for-bit, because replayed units feed the same output formatting
/// as freshly computed ones and the rendered output is pinned by the
/// golden digest.
pub trait Record: Sized {
    /// Append this value to `w`.
    fn record(&self, w: &mut SnapWriter);

    /// Read a value back from `r`.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] from the stream.
    fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! record_uint {
    ($($t:ty),*) => {$(
        impl Record for $t {
            fn record(&self, w: &mut SnapWriter) {
                w.put_u64(*self as u64);
            }
            fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(r.get_u64()? as $t)
            }
        }
    )*};
}

record_uint!(u8, u16, u32, u64, usize);

impl Record for bool {
    fn record(&self, w: &mut SnapWriter) {
        w.put_bool(*self);
    }
    fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_bool()
    }
}

impl Record for i64 {
    fn record(&self, w: &mut SnapWriter) {
        w.put_i64(*self);
    }
    fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_i64()
    }
}

impl Record for f64 {
    fn record(&self, w: &mut SnapWriter) {
        w.put_f64(*self);
    }
    fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_f64()
    }
}

impl Record for String {
    fn record(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_str()
    }
}

impl<T: Record> Record for Option<T> {
    fn record(&self, w: &mut SnapWriter) {
        w.put_bool(self.is_some());
        if let Some(x) = self {
            x.record(w);
        }
    }
    fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        if r.get_bool()? {
            Ok(Some(T::replay(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Record> Record for Vec<T> {
    fn record(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for x in self {
            x.record(w);
        }
    }
    fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::replay(r)?);
        }
        Ok(out)
    }
}

macro_rules! record_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Record),+> Record for ($($name,)+) {
            fn record(&self, w: &mut SnapWriter) {
                $(self.$idx.record(w);)+
            }
            fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(($($name::replay(r)?,)+))
            }
        }
    };
}

record_tuple!(A: 0);
record_tuple!(A: 0, B: 1);
record_tuple!(A: 0, B: 1, C: 2);
record_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    struct Blob {
        a: u64,
        b: Vec<u64>,
        s: String,
    }

    impl Snapshot for Blob {
        fn save(&self, w: &mut SnapWriter) {
            w.section("blob");
            w.put_u64(self.a);
            w.put_len(self.b.len());
            for x in &self.b {
                w.put_u64(*x);
            }
            w.put_str(&self.s);
        }
        fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            r.section("blob")?;
            self.a = r.get_u64()?;
            let n = r.get_len_expect("blob.b", self.b.len())?;
            for i in 0..n {
                self.b[i] = r.get_u64()?;
            }
            self.s = r.get_str()?;
            Ok(())
        }
    }

    fn blob() -> Blob {
        Blob {
            a: 0xDEAD_BEEF,
            b: vec![1, 2, 3],
            s: "täkō".to_string(),
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let b = blob();
        let env = encode(&b);
        let mut out = Blob {
            a: 0,
            b: vec![0; 3],
            s: String::new(),
        };
        decode(&env, &mut out).unwrap();
        assert_eq!(out.a, b.a);
        assert_eq!(out.b, b.b);
        assert_eq!(out.s, b.s);
    }

    #[test]
    fn snapshot_ids_are_stable_and_short() {
        let env = encode(&blob());
        let id = snapshot_id(&env);
        assert_eq!(id.len(), 12);
        assert_eq!(id, snapshot_id(&encode(&blob())));
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let mut env = encode(&blob());
        let last = env.len() - 1;
        env[last] ^= 0xFF;
        assert_eq!(payload(&env).unwrap_err(), SnapError::BadChecksum);
    }

    #[test]
    fn truncated_envelope_is_rejected() {
        let env = encode(&blob());
        assert_eq!(
            payload(&env[..env.len() - 1]).unwrap_err(),
            SnapError::Truncated
        );
        assert_eq!(payload(&env[..10]).unwrap_err(), SnapError::Truncated);
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut env = encode(&blob());
        env[0] = b'X';
        assert_eq!(payload(&env).unwrap_err(), SnapError::BadMagic);
        let mut env = encode(&blob());
        env[8] = 0xEE;
        assert!(matches!(
            payload(&env).unwrap_err(),
            SnapError::BadVersion { found: _ }
        ));
    }

    #[test]
    fn section_mismatch_is_loud() {
        let mut w = SnapWriter::new();
        w.section("dram");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let e = r.section("mshr").unwrap_err();
        assert!(matches!(e, SnapError::Section { .. }));
        assert!(e.to_string().contains("mshr"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut env = encode(&blob());
        // Splice one extra payload byte and fix up the length; checksum
        // then fails first, which is fine — rebuild properly instead.
        let b = blob();
        let mut w = SnapWriter::new();
        b.save(&mut w);
        w.put_u8(7);
        let payload_bytes = w.into_bytes();
        let mut h = Sha256::new();
        h.update(&payload_bytes);
        let sum = h.finish();
        env.clear();
        env.extend_from_slice(&SNAP_MAGIC);
        env.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        env.extend_from_slice(&(payload_bytes.len() as u64).to_le_bytes());
        env.extend_from_slice(&sum);
        env.extend_from_slice(&payload_bytes);
        let mut out = Blob {
            a: 0,
            b: vec![0; 3],
            s: String::new(),
        };
        assert_eq!(
            decode(&env, &mut out).unwrap_err(),
            SnapError::TrailingBytes
        );
    }

    #[test]
    fn records_roundtrip_bit_exactly() {
        let mut w = SnapWriter::new();
        (42u64, -7i64, 0.1f64).record(&mut w);
        Some("abc".to_string()).record(&mut w);
        vec![1u32, 2, 3].record(&mut w);
        true.record(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let t = <(u64, i64, f64)>::replay(&mut r).unwrap();
        assert_eq!(t.0, 42);
        assert_eq!(t.1, -7);
        assert_eq!(t.2.to_bits(), 0.1f64.to_bits());
        assert_eq!(
            Option::<String>::replay(&mut r).unwrap(),
            Some("abc".to_string())
        );
        assert_eq!(Vec::<u32>::replay(&mut r).unwrap(), vec![1, 2, 3]);
        assert!(bool::replay(&mut r).unwrap());
        assert_eq!(r.remaining(), 0);
    }
}
