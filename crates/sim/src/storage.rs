//! Crash-safe persistence fabric with deterministic I/O fault injection.
//!
//! Every durable write in the stack — campaign manifests, journal
//! appends, `.done` envelopes, triage bundles, `metrics.json` — goes
//! through a [`Storage`] backend instead of calling `std::fs` directly.
//! Two backends exist:
//!
//! * [`DiskStorage`] — the real filesystem, with an atomic-write
//!   discipline: whole-file writes land in a temp file that is synced
//!   and renamed into place, so a crash mid-write can never leave a
//!   half-record under the final name.
//! * [`FaultStorage`] — a deterministic wrapper that counts every
//!   durable operation as an *I/O site* and injects a scheduled fault
//!   at the N-th site: crash before or after the operation, tear a
//!   write at byte k, drop the rename of an atomic write (leaving only
//!   temp debris), duplicate an append, flip a bit in the written
//!   bytes, or surface a transient/permanent I/O error. The plan is a
//!   seeded, pre-computed cursor exactly like
//!   [`FaultPlan`](crate::fault::FaultPlan), so a crash-point sweep can
//!   enumerate *every* site of a campaign and prove recovery from each.
//!
//! Injected crashes are modeled as panics carrying the
//! [`CRASH_MARKER`] prefix; the sweep harness catches them with
//! `catch_unwind`, exactly as the campaign runner already treats
//! `--crash-after-units`. Torn writes, dropped renames, bit flips, and
//! duplicated appends corrupt *silently* (optionally crashing right
//! after), which is what real power loss and bit rot do.
//!
//! Failed operations are classified [`IoClass::Transient`] or
//! [`IoClass::Permanent`] and recorded both per backend instance
//! ([`Storage::health`]) and in a thread-local accumulator
//! ([`io_health`]) that `TakoSystem::health()` consults, so I/O
//! degradation surfaces through the same verdict as watchdog stalls
//! and Morph quarantines.

use std::cell::RefCell;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::rng::Rng;

/// Panic-payload prefix for injected storage crashes; sweep harnesses
/// and the campaign runner recognize interrupted attempts by it.
pub const CRASH_MARKER: &str = "io-crash:";

/// Message prefix for permanent storage failures surfaced as panics by
/// code that cannot return an error (the unit-journal append path).
/// The campaign runner suppresses retries when it sees this marker —
/// backoff only helps transient faults.
pub const PERMANENT_MARKER: &str = "storage[permanent]:";

// ---------------------------------------------------------------------
// Error classification & health accounting
// ---------------------------------------------------------------------

/// Whether an I/O error is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// Plausibly goes away on its own (interrupted syscall, timeout,
    /// resource pressure): the seeded retry backoff applies.
    Transient,
    /// Will not improve with retries (corrupt data, missing file,
    /// permission denied, disk full): fail fast, no backoff.
    Permanent,
}

/// Classify an `io::Error` for retry purposes.
pub fn classify(e: &io::Error) -> IoClass {
    use io::ErrorKind::*;
    match e.kind() {
        Interrupted | WouldBlock | TimedOut | ResourceBusy | Deadlock => IoClass::Transient,
        _ => IoClass::Permanent,
    }
}

/// Running tally of storage failures, kept per backend instance and
/// per thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoHealth {
    /// Failed operations classified transient.
    pub transient: u64,
    /// Failed operations classified permanent.
    pub permanent: u64,
    /// Description of the most recent failure.
    pub last: Option<String>,
}

impl IoHealth {
    /// True when no failure has been recorded.
    pub fn is_clean(&self) -> bool {
        self.transient == 0 && self.permanent == 0
    }

    fn note(&mut self, class: IoClass, detail: String) {
        match class {
            IoClass::Transient => self.transient += 1,
            IoClass::Permanent => self.permanent += 1,
        }
        self.last = Some(detail);
    }
}

impl fmt::Display for IoHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} transient, {} permanent I/O failures",
            self.transient, self.permanent
        )?;
        if let Some(last) = &self.last {
            write!(f, " (last: {last})")?;
        }
        Ok(())
    }
}

thread_local! {
    static THREAD_IO_HEALTH: RefCell<IoHealth> = RefCell::new(IoHealth::default());
}

/// The calling thread's accumulated storage-failure tally. Experiments
/// run single-threaded on a pool worker, so the thread that simulates
/// is the thread that journals — `TakoSystem::health()` reads this to
/// fold I/O degradation into its verdict.
pub fn io_health() -> IoHealth {
    THREAD_IO_HEALTH.with(|h| h.borrow().clone())
}

/// Clear the calling thread's storage-failure tally (start of an
/// attempt, or a test establishing a clean baseline).
pub fn reset_io_health() {
    THREAD_IO_HEALTH.with(|h| *h.borrow_mut() = IoHealth::default());
}

fn note_failure(shared: &Mutex<IoHealth>, op: &str, path: &Path, e: &io::Error) -> IoClass {
    let class = classify(e);
    let detail = format!("{op} {}: {e} ({class:?})", path.display());
    if let Ok(mut h) = shared.lock() {
        h.note(class, detail.clone());
    }
    THREAD_IO_HEALTH.with(|h| h.borrow_mut().note(class, detail));
    class
}

// ---------------------------------------------------------------------
// The Storage trait
// ---------------------------------------------------------------------

/// A durable byte store. Everything the campaign fabric persists goes
/// through one of these, so a fault-injecting backend can interpose on
/// every I/O site.
///
/// All whole-file writes are atomic (temp + sync + rename); appends
/// are raw (the record formats layered above carry per-record
/// checksums and tolerate torn tails).
pub trait Storage: Send + Sync {
    /// Read the whole file.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from the underlying store.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Atomically replace `path` with `bytes`: a crash at any point
    /// leaves either the old content or the new, never a mixture.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from the underlying store.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Append `bytes` to `path`, creating it if absent. Not atomic: a
    /// crash can tear the tail, which the record formats above detect
    /// by checksum.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from the underlying store.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flush `path`'s content to stable media (the durability point of
    /// a batch of appends).
    ///
    /// # Errors
    ///
    /// Any `io::Error` from the underlying store.
    fn sync(&self, path: &Path) -> io::Result<()>;

    /// Truncate `path` to `len` bytes (dropping a corrupt tail).
    ///
    /// # Errors
    ///
    /// Any `io::Error` from the underlying store.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;

    /// Remove `path`; absent files are not an error.
    ///
    /// # Errors
    ///
    /// Any `io::Error` other than `NotFound`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// This backend's accumulated failure tally.
    fn health(&self) -> IoHealth;
}

// ---------------------------------------------------------------------
// DiskStorage
// ---------------------------------------------------------------------

/// The real filesystem, with the atomic-write discipline.
#[derive(Debug, Default)]
pub struct DiskStorage {
    health: Mutex<IoHealth>,
}

impl DiskStorage {
    /// A fresh backend with a clean health tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh backend behind an `Arc`, ready for [`CampaignOpts`-style
    /// sharing](crate::storage::Storage).
    pub fn shared() -> Arc<dyn Storage> {
        Arc::new(Self::new())
    }

    fn track<T>(&self, op: &str, path: &Path, r: io::Result<T>) -> io::Result<T> {
        if let Err(e) = &r {
            note_failure(&self.health, op, path, e);
        }
        r
    }
}

/// The temp-file sibling an atomic write stages into before renaming.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn disk_write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

fn disk_append(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(bytes)
}

impl Storage for DiskStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.track("read", path, std::fs::read(path))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.track("write", path, disk_write_atomic(path, bytes))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.track("append", path, disk_append(path, bytes))
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let r = File::open(path).and_then(|f| f.sync_data());
        self.track("sync", path, r)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let r = OpenOptions::new()
            .write(true)
            .open(path)
            .and_then(|f| f.set_len(len));
        self.track("truncate", path, r)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let r = match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        };
        self.track("remove", path, r)
    }

    fn health(&self) -> IoHealth {
        self.health.lock().map(|h| h.clone()).unwrap_or_default()
    }
}

// ---------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------

/// What goes wrong at a scheduled I/O site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// Die before the operation performs any I/O.
    Crash,
    /// Perform the operation, then die — power loss between a write
    /// reaching the OS and the process continuing.
    CrashAfter,
    /// A write/append persists only its first `keep` bytes, then the
    /// process dies (the canonical torn write).
    TornWrite {
        /// Bytes that reach the file before the crash.
        keep: u64,
    },
    /// An atomic write stages its temp file but dies before the
    /// rename: the final name keeps its old content, temp debris
    /// remains.
    DropRename,
    /// The append is applied twice (a retried write that actually
    /// landed the first time). No crash.
    DuplicateAppend,
    /// One bit of the written bytes is flipped on its way to the
    /// medium. No crash — silent corruption.
    BitFlip {
        /// Byte offset within the written buffer (wrapped by len).
        offset: u64,
        /// Bit index 0..8 within that byte.
        bit: u8,
    },
    /// The operation fails with a transient error (`Interrupted`).
    TransientError,
    /// The operation fails with a permanent error (`InvalidData`).
    PermanentError,
}

impl IoFaultKind {
    /// All kinds, in a fixed order (used by `mix` plans).
    pub const ALL: [IoFaultKind; 8] = [
        IoFaultKind::Crash,
        IoFaultKind::CrashAfter,
        IoFaultKind::TornWrite { keep: 7 },
        IoFaultKind::DropRename,
        IoFaultKind::DuplicateAppend,
        IoFaultKind::BitFlip { offset: 3, bit: 5 },
        IoFaultKind::TransientError,
        IoFaultKind::PermanentError,
    ];

    /// Short name used by the `--io-faults seed:kind[:count]` flag.
    pub fn name(self) -> &'static str {
        match self {
            IoFaultKind::Crash => "crash",
            IoFaultKind::CrashAfter => "crash-after",
            IoFaultKind::TornWrite { .. } => "torn",
            IoFaultKind::DropRename => "drop-rename",
            IoFaultKind::DuplicateAppend => "dup-append",
            IoFaultKind::BitFlip { .. } => "flip",
            IoFaultKind::TransientError => "transient",
            IoFaultKind::PermanentError => "permanent",
        }
    }

    /// Inverse of [`name`](IoFaultKind::name), with default payloads
    /// for the parameterized kinds.
    pub fn from_name(s: &str) -> Option<IoFaultKind> {
        IoFaultKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// One scheduled I/O fault: at the `at_op`-th durable operation the
/// backend performs (0-based), `kind` happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFault {
    /// Which I/O site (operation index) the fault fires at.
    pub at_op: u64,
    /// What goes wrong there.
    pub kind: IoFaultKind,
}

/// A seeded, deterministic schedule of I/O faults — the persistence
/// sibling of [`FaultPlan`](crate::fault::FaultPlan).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IoFaultPlan {
    /// The seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Scheduled faults. At most one fires per operation; the first
    /// match in vector order wins.
    pub faults: Vec<IoFault>,
}

impl IoFaultPlan {
    /// A plan that injects nothing (pure I/O-site counting).
    pub fn empty() -> Self {
        IoFaultPlan::default()
    }

    /// A plan with a single hand-placed fault.
    pub fn single(at_op: u64, kind: IoFaultKind) -> Self {
        IoFaultPlan {
            seed: 0,
            faults: vec![IoFault { at_op, kind }],
        }
    }

    /// A seeded plan of `count` faults drawn from `kinds` (round-robin)
    /// at operation indices uniform in `[lo, hi)`. Identical arguments
    /// always produce an identical plan.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty or `lo >= hi`.
    pub fn seeded(seed: u64, kinds: &[IoFaultKind], count: usize, lo: u64, hi: u64) -> Self {
        assert!(!kinds.is_empty(), "kinds must be non-empty");
        assert!(lo < hi, "op window must be non-empty");
        let mut rng = Rng::new(seed);
        let faults = (0..count)
            .map(|i| IoFault {
                at_op: lo + rng.below(hi - lo),
                kind: kinds[i % kinds.len()],
            })
            .collect();
        IoFaultPlan { seed, faults }
    }

    /// Parse the `--io-faults seed:kind[:count]` flag syntax, e.g.
    /// `7:torn`, `3:flip:4`, or `11:mix:10` (`mix`/`all` cycles through
    /// every kind). Operation indices are spread over the first 64
    /// sites; sweeps that know the site count should use
    /// [`IoFaultPlan::single`] per site instead.
    pub fn parse(s: &str) -> Result<IoFaultPlan, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return Err(format!("--io-faults wants seed:kind[:count], got `{s}`"));
        }
        let seed: u64 = parts[0]
            .parse()
            .map_err(|_| format!("bad io-fault seed `{}`", parts[0]))?;
        let kinds: Vec<IoFaultKind> = match parts[1] {
            "mix" | "all" => IoFaultKind::ALL.to_vec(),
            other => vec![IoFaultKind::from_name(other).ok_or(format!(
                "unknown io-fault kind `{other}` (want crash, crash-after, torn, \
                 drop-rename, dup-append, flip, transient, permanent, or mix)"
            ))?],
        };
        let count: usize = match parts.get(2) {
            Some(c) => c.parse().map_err(|_| format!("bad io-fault count `{c}`"))?,
            None => kinds.len(),
        };
        Ok(IoFaultPlan::seeded(seed, &kinds, count, 0, 64))
    }
}

// ---------------------------------------------------------------------
// FaultStorage
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct FaultCursor {
    ops: u64,
    taken: Vec<bool>,
    fired: u64,
}

/// Deterministic fault-injecting wrapper around another [`Storage`].
///
/// Every trait call counts as one I/O site; a scheduled fault fires
/// when its site comes up. Crashes are panics carrying
/// [`CRASH_MARKER`]; corruption kinds silently mangle the bytes that
/// reach the inner backend.
pub struct FaultStorage {
    inner: Arc<dyn Storage>,
    plan: IoFaultPlan,
    cursor: Mutex<FaultCursor>,
    health: Mutex<IoHealth>,
}

impl fmt::Debug for FaultStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultStorage")
            .field("plan", &self.plan)
            .field("ops", &self.ops_performed())
            .finish_non_exhaustive()
    }
}

impl FaultStorage {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: Arc<dyn Storage>, plan: IoFaultPlan) -> Self {
        let taken = vec![false; plan.faults.len()];
        FaultStorage {
            inner,
            plan,
            cursor: Mutex::new(FaultCursor {
                ops: 0,
                taken,
                fired: 0,
            }),
            health: Mutex::new(IoHealth::default()),
        }
    }

    /// A counting backend over a fresh [`DiskStorage`] with no faults —
    /// the first pass of a crash-point sweep, measuring how many I/O
    /// sites a campaign has.
    pub fn counting() -> Self {
        Self::new(Arc::new(DiskStorage::new()), IoFaultPlan::empty())
    }

    /// Total durable operations performed (the I/O-site count).
    pub fn ops_performed(&self) -> u64 {
        self.cursor.lock().map(|c| c.ops).unwrap_or(0)
    }

    /// How many scheduled faults have fired.
    pub fn faults_fired(&self) -> u64 {
        self.cursor.lock().map(|c| c.fired).unwrap_or(0)
    }

    /// Advance the op cursor and return the fault due at this site, if
    /// any.
    fn step(&self, op: &str, path: &Path) -> Option<IoFaultKind> {
        let mut c = self.cursor.lock().ok()?;
        let site = c.ops;
        c.ops += 1;
        for (i, f) in self.plan.faults.iter().enumerate() {
            if !c.taken[i] && f.at_op == site {
                c.taken[i] = true;
                c.fired += 1;
                drop(c);
                if matches!(
                    f.kind,
                    IoFaultKind::TransientError | IoFaultKind::PermanentError
                ) {
                    // Error kinds are reported through note_failure when
                    // the synthesized error is returned, not here.
                } else if let Ok(mut h) = self.health.lock() {
                    h.last = Some(format!(
                        "injected {} at io site {site} ({op} {})",
                        f.kind.name(),
                        path.display()
                    ));
                }
                return Some(f.kind);
            }
        }
        None
    }

    fn crash(&self, op: &str, path: &Path, when: &str) -> ! {
        panic!(
            "{CRASH_MARKER} injected crash {when} {op} {} \
             (deterministic I/O fault plan, seed {})",
            path.display(),
            self.plan.seed
        );
    }

    fn synth_error(&self, kind: IoFaultKind, op: &str, path: &Path) -> io::Error {
        let (ek, what) = match kind {
            IoFaultKind::TransientError => (io::ErrorKind::Interrupted, "transient"),
            _ => (io::ErrorKind::InvalidData, "permanent"),
        };
        let e = io::Error::new(ek, format!("injected {what} I/O error"));
        note_failure(&self.health, op, path, &e);
        e
    }

    /// Apply `kind` to a buffered write of `bytes`, returning the bytes
    /// that actually reach the medium (and whether to crash after).
    fn mangle(kind: IoFaultKind, bytes: &[u8]) -> (Vec<u8>, bool) {
        match kind {
            IoFaultKind::TornWrite { keep } => {
                let keep = (keep as usize).min(bytes.len());
                (bytes[..keep].to_vec(), true)
            }
            IoFaultKind::BitFlip { offset, bit } => {
                let mut out = bytes.to_vec();
                if !out.is_empty() {
                    let at = (offset as usize) % out.len();
                    out[at] ^= 1u8 << (bit % 8);
                }
                (out, false)
            }
            _ => (bytes.to_vec(), false),
        }
    }
}

impl Storage for FaultStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.step("read", path) {
            Some(IoFaultKind::Crash) => self.crash("read", path, "before"),
            Some(IoFaultKind::CrashAfter) => {
                let r = self.inner.read(path);
                drop(r);
                self.crash("read", path, "after")
            }
            Some(k @ (IoFaultKind::TransientError | IoFaultKind::PermanentError)) => {
                Err(self.synth_error(k, "read", path))
            }
            _ => self.inner.read(path),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.step("write", path) {
            Some(IoFaultKind::Crash) => self.crash("write", path, "before"),
            Some(IoFaultKind::CrashAfter) => {
                let _ = self.inner.write_atomic(path, bytes);
                self.crash("write", path, "after")
            }
            Some(IoFaultKind::DropRename) => {
                // Stage the temp file exactly as the atomic path would,
                // then die before the rename: final name untouched.
                let _ = self.inner.write_atomic(&tmp_sibling(path), bytes);
                self.crash("write", path, "mid (rename dropped)")
            }
            Some(k @ IoFaultKind::TornWrite { .. }) => {
                // A torn whole-file write tears the *temp* file and then
                // dies before the rename would happen — the atomic
                // discipline means the final name never sees the tear.
                let (torn, _) = Self::mangle(k, bytes);
                let _ = self.inner.write_atomic(&tmp_sibling(path), &torn);
                self.crash("write", path, "mid (torn)")
            }
            Some(k @ IoFaultKind::BitFlip { .. }) => {
                let (flipped, _) = Self::mangle(k, bytes);
                self.inner.write_atomic(path, &flipped)
            }
            Some(k @ (IoFaultKind::TransientError | IoFaultKind::PermanentError)) => {
                Err(self.synth_error(k, "write", path))
            }
            Some(IoFaultKind::DuplicateAppend) | None => self.inner.write_atomic(path, bytes),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.step("append", path) {
            Some(IoFaultKind::Crash) => self.crash("append", path, "before"),
            Some(IoFaultKind::CrashAfter) => {
                let _ = self.inner.append(path, bytes);
                self.crash("append", path, "after")
            }
            Some(k @ IoFaultKind::TornWrite { .. }) => {
                // Appends have no rename shield: the tear lands in the
                // journal itself and the per-record checksums must
                // catch it on resume.
                let (torn, _) = Self::mangle(k, bytes);
                let _ = self.inner.append(path, &torn);
                self.crash("append", path, "mid (torn)")
            }
            Some(IoFaultKind::DuplicateAppend) => {
                self.inner.append(path, bytes)?;
                self.inner.append(path, bytes)
            }
            Some(k @ IoFaultKind::BitFlip { .. }) => {
                let (flipped, _) = Self::mangle(k, bytes);
                self.inner.append(path, &flipped)
            }
            Some(k @ (IoFaultKind::TransientError | IoFaultKind::PermanentError)) => {
                Err(self.synth_error(k, "append", path))
            }
            Some(IoFaultKind::DropRename) | None => self.inner.append(path, bytes),
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.step("sync", path) {
            Some(IoFaultKind::Crash | IoFaultKind::TornWrite { .. }) => {
                self.crash("sync", path, "before")
            }
            Some(IoFaultKind::CrashAfter | IoFaultKind::DropRename) => {
                let _ = self.inner.sync(path);
                self.crash("sync", path, "after")
            }
            Some(k @ (IoFaultKind::TransientError | IoFaultKind::PermanentError)) => {
                Err(self.synth_error(k, "sync", path))
            }
            _ => self.inner.sync(path),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.step("truncate", path) {
            Some(IoFaultKind::Crash) => self.crash("truncate", path, "before"),
            Some(IoFaultKind::CrashAfter) => {
                let _ = self.inner.truncate(path, len);
                self.crash("truncate", path, "after")
            }
            Some(k @ (IoFaultKind::TransientError | IoFaultKind::PermanentError)) => {
                Err(self.synth_error(k, "truncate", path))
            }
            _ => self.inner.truncate(path, len),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        // Existence probes are metadata, not durable I/O: not a site.
        self.inner.exists(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.step("remove", path) {
            Some(IoFaultKind::Crash) => self.crash("remove", path, "before"),
            Some(IoFaultKind::CrashAfter) => {
                let _ = self.inner.remove(path);
                self.crash("remove", path, "after")
            }
            Some(k @ (IoFaultKind::TransientError | IoFaultKind::PermanentError)) => {
                Err(self.synth_error(k, "remove", path))
            }
            _ => self.inner.remove(path),
        }
    }

    fn health(&self) -> IoHealth {
        let mut h = self.health.lock().map(|h| h.clone()).unwrap_or_default();
        let inner = self.inner.health();
        h.transient += inner.transient;
        h.permanent += inner.permanent;
        if h.last.is_none() {
            h.last = inner.last;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tako-storage-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn disk_atomic_write_roundtrip_and_overwrite() {
        let d = tmpdir("atomic");
        let s = DiskStorage::new();
        let p = d.join("file.bin");
        s.write_atomic(&p, b"first").unwrap();
        assert_eq!(s.read(&p).unwrap(), b"first");
        s.write_atomic(&p, b"second").unwrap();
        assert_eq!(s.read(&p).unwrap(), b"second");
        assert!(!s.exists(&tmp_sibling(&p)), "temp debris left behind");
        assert!(s.health().is_clean());
    }

    #[test]
    fn disk_append_and_truncate() {
        let d = tmpdir("append");
        let s = DiskStorage::new();
        let p = d.join("log");
        s.append(&p, b"ab").unwrap();
        s.append(&p, b"cd").unwrap();
        s.sync(&p).unwrap();
        assert_eq!(s.read(&p).unwrap(), b"abcd");
        s.truncate(&p, 3).unwrap();
        assert_eq!(s.read(&p).unwrap(), b"abc");
        s.remove(&p).unwrap();
        s.remove(&p).unwrap(); // absent is fine
        assert!(!s.exists(&p));
    }

    #[test]
    fn disk_read_failure_is_classified_permanent() {
        let d = tmpdir("classify");
        let s = DiskStorage::new();
        reset_io_health();
        assert!(s.read(&d.join("nope")).is_err());
        let h = s.health();
        assert_eq!(h.permanent, 1);
        assert_eq!(h.transient, 0);
        assert_eq!(io_health().permanent, 1, "thread-local tally missed it");
        reset_io_health();
    }

    #[test]
    fn fault_crash_fires_at_exact_site() {
        let d = tmpdir("crash");
        let s = FaultStorage::new(
            Arc::new(DiskStorage::new()),
            IoFaultPlan::single(2, IoFaultKind::Crash),
        );
        let p = d.join("f");
        s.write_atomic(&p, b"0").unwrap(); // site 0
        s.append(&p, b"1").unwrap(); // site 1
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.append(&p, b"2") // site 2 → crash before
        }));
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.starts_with(CRASH_MARKER), "payload: {msg}");
        // The crash fired *before* the op: nothing appended.
        assert_eq!(std::fs::read(&p).unwrap(), b"01");
        assert_eq!(s.faults_fired(), 1);
    }

    #[test]
    fn fault_torn_append_persists_prefix_then_crashes() {
        let d = tmpdir("torn");
        let s = FaultStorage::new(
            Arc::new(DiskStorage::new()),
            IoFaultPlan::single(0, IoFaultKind::TornWrite { keep: 3 }),
        );
        let p = d.join("j");
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.append(&p, b"ABCDEFGH")));
        assert!(r.is_err());
        assert_eq!(std::fs::read(&p).unwrap(), b"ABC");
    }

    #[test]
    fn fault_drop_rename_leaves_old_content() {
        let d = tmpdir("rename");
        let disk: Arc<dyn Storage> = Arc::new(DiskStorage::new());
        let p = d.join("m");
        disk.write_atomic(&p, b"old").unwrap();
        let s = FaultStorage::new(disk, IoFaultPlan::single(0, IoFaultKind::DropRename));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.write_atomic(&p, b"new-and-longer")
        }));
        assert!(r.is_err());
        assert_eq!(std::fs::read(&p).unwrap(), b"old", "rename must not land");
        assert!(p.with_file_name("m.tmp").exists(), "temp debris expected");
    }

    #[test]
    fn fault_bit_flip_corrupts_silently() {
        let d = tmpdir("flip");
        let s = FaultStorage::new(
            Arc::new(DiskStorage::new()),
            IoFaultPlan::single(0, IoFaultKind::BitFlip { offset: 1, bit: 0 }),
        );
        let p = d.join("b");
        s.write_atomic(&p, &[0u8, 0, 0]).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), vec![0u8, 1, 0]);
    }

    #[test]
    fn fault_duplicate_append_doubles_the_record() {
        let d = tmpdir("dup");
        let s = FaultStorage::new(
            Arc::new(DiskStorage::new()),
            IoFaultPlan::single(0, IoFaultKind::DuplicateAppend),
        );
        let p = d.join("dup");
        s.append(&p, b"rec").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"recrec");
    }

    #[test]
    fn fault_errors_classify_and_count() {
        let d = tmpdir("errs");
        let plan = IoFaultPlan {
            seed: 0,
            faults: vec![
                IoFault {
                    at_op: 0,
                    kind: IoFaultKind::TransientError,
                },
                IoFault {
                    at_op: 1,
                    kind: IoFaultKind::PermanentError,
                },
            ],
        };
        reset_io_health();
        let s = FaultStorage::new(Arc::new(DiskStorage::new()), plan);
        let p = d.join("x");
        let e = s.append(&p, b"a").unwrap_err();
        assert_eq!(classify(&e), IoClass::Transient);
        let e = s.append(&p, b"b").unwrap_err();
        assert_eq!(classify(&e), IoClass::Permanent);
        let h = s.health();
        assert_eq!((h.transient, h.permanent), (1, 1));
        let th = io_health();
        assert_eq!((th.transient, th.permanent), (1, 1));
        reset_io_health();
        // Un-faulted sites pass through untouched.
        s.append(&p, b"c").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"c");
    }

    #[test]
    fn counting_backend_counts_ops_and_never_fires() {
        let d = tmpdir("count");
        let s = FaultStorage::counting();
        let p = d.join("c");
        s.write_atomic(&p, b"1").unwrap();
        s.append(&p, b"2").unwrap();
        s.sync(&p).unwrap();
        let _ = s.read(&p).unwrap();
        s.truncate(&p, 1).unwrap();
        s.remove(&p).unwrap();
        assert_eq!(s.ops_performed(), 6);
        assert_eq!(s.faults_fired(), 0);
    }

    #[test]
    fn seeded_plan_is_deterministic_and_parse_forms_work() {
        let a = IoFaultPlan::seeded(9, &IoFaultKind::ALL, 12, 0, 100);
        let b = IoFaultPlan::seeded(9, &IoFaultKind::ALL, 12, 0, 100);
        assert_eq!(a, b);
        assert_ne!(a, IoFaultPlan::seeded(10, &IoFaultKind::ALL, 12, 0, 100));
        for (i, f) in a.faults.iter().enumerate() {
            assert!(f.at_op < 100);
            assert_eq!(f.kind, IoFaultKind::ALL[i % IoFaultKind::ALL.len()]);
        }
        let p = IoFaultPlan::parse("7:torn").unwrap();
        assert_eq!(p.faults.len(), 1);
        assert!(matches!(p.faults[0].kind, IoFaultKind::TornWrite { .. }));
        assert_eq!(IoFaultPlan::parse("3:mix:5").unwrap().faults.len(), 5);
        assert!(IoFaultPlan::parse("x:torn").is_err());
        assert!(IoFaultPlan::parse("1:bogus").is_err());
        assert!(IoFaultPlan::parse("1").is_err());
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in IoFaultKind::ALL {
            assert_eq!(IoFaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(IoFaultKind::from_name("nope"), None);
    }
}
