//! Per-thread experiment supervision: deadlines and triage context.
//!
//! The supervised campaign runner executes each experiment harness on a
//! worker thread behind a panic guard. This module is the thin,
//! thread-local channel between that runner and the simulation stack:
//!
//! * the runner **arms** a wall-clock deadline (and a supervision mark)
//!   before invoking the harness and disarms it after;
//! * the hierarchy **probes** the deadline from its watchdog-epoch path
//!   — the same cadence the invariant sweeps run at — so a runaway or
//!   stalled simulation is killed at a point where a structured
//!   diagnostic can still be produced;
//! * components **note** triage context (the last checkpoint id, the
//!   campaign unit cursor) that the runner folds into the triage bundle
//!   when a harness dies.
//!
//! Everything here is wall-clock and thread-local: it never touches
//! simulated state, so arming supervision cannot perturb simulated
//! cycles, counters, or output (the noninterference contract). The
//! deadline *kill point* is inherently nondeterministic — what is
//! deterministic is the simulation itself and the retry schedule the
//! runner derives from its seed.

use std::cell::{Cell, RefCell};
use std::time::{Duration, Instant};

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static DEADLINE: Cell<Option<(Instant, Duration)>> = const { Cell::new(None) };
    static LAST_CHECKPOINT: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Arm supervision on this thread with an optional wall-clock deadline.
/// Newly built hierarchies on this thread attach an event-trace tap for
/// triage while armed.
pub fn arm(deadline: Option<Duration>) {
    ARMED.with(|a| a.set(true));
    DEADLINE.with(|d| d.set(deadline.map(|t| (Instant::now(), t))));
    LAST_CHECKPOINT.with(|c| c.borrow_mut().take());
}

/// Disarm supervision on this thread.
pub fn disarm() {
    ARMED.with(|a| a.set(false));
    DEADLINE.with(|d| d.set(None));
    LAST_CHECKPOINT.with(|c| c.borrow_mut().take());
}

/// Whether supervision is armed on this thread.
pub fn armed() -> bool {
    ARMED.with(|a| a.get())
}

/// If the armed deadline has expired, the configured budget and the
/// wall time actually elapsed. `None` while within budget or unarmed.
pub fn deadline_exceeded() -> Option<(Duration, Duration)> {
    DEADLINE.with(|d| {
        let (start, budget) = d.get()?;
        let elapsed = start.elapsed();
        (elapsed > budget).then_some((budget, elapsed))
    })
}

/// Record the id of the most recent durable checkpoint on this thread
/// (a snapshot id or a campaign unit cursor), for triage bundles.
pub fn note_checkpoint(id: &str) {
    LAST_CHECKPOINT.with(|c| *c.borrow_mut() = Some(id.to_string()));
}

/// The most recent checkpoint id noted on this thread, if any.
pub fn last_checkpoint() -> Option<String> {
    LAST_CHECKPOINT.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_disarm_cycle() {
        assert!(!armed());
        arm(None);
        assert!(armed());
        assert!(deadline_exceeded().is_none(), "no deadline configured");
        note_checkpoint("abc123");
        assert_eq!(last_checkpoint().as_deref(), Some("abc123"));
        disarm();
        assert!(!armed());
        assert!(last_checkpoint().is_none());
    }

    #[test]
    fn deadline_trips_after_budget() {
        arm(Some(Duration::from_nanos(1)));
        std::thread::sleep(Duration::from_millis(2));
        let (budget, elapsed) = deadline_exceeded().expect("deadline should be exceeded");
        assert!(elapsed >= budget);
        disarm();
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        arm(Some(Duration::from_secs(3600)));
        assert!(deadline_exceeded().is_none());
        disarm();
    }

    #[test]
    fn state_is_thread_local() {
        arm(None);
        std::thread::spawn(|| assert!(!armed()))
            .join()
            .expect("spawned probe thread");
        disarm();
    }
}
