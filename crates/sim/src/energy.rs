//! Dynamic-energy model.
//!
//! The paper reports *dynamic* execution energy using parameters from the
//! literature it cites. The authors' exact numbers are not public, so this
//! model uses representative per-event energies (picojoules) whose
//! *orderings* carry the paper's conclusions: DRAM accesses dominate,
//! followed by LLC and L2 accesses and NoC traffic; an out-of-order core
//! instruction costs an order of magnitude more than an engine PE
//! operation (the fetch/decode/rename overhead the dataflow fabric avoids).
//!
//! Energy is computed post-hoc from the [`Stats`] counters, which keeps
//! the simulator's hot path free of floating-point work.

use crate::event::{LevelId, TxnEvent, TxnSink};
use crate::stats::{Counter, Stats};

/// Per-event dynamic energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Average energy of one core instruction (incl. pipeline overheads).
    pub core_instr_pj: f64,
    /// One L1d access.
    pub l1_access_pj: f64,
    /// One L2 access.
    pub l2_access_pj: f64,
    /// One LLC-bank access.
    pub llc_access_pj: f64,
    /// One full cache-line DRAM access.
    pub dram_access_pj: f64,
    /// One flit traversing one hop (router + link).
    pub noc_flit_hop_pj: f64,
    /// One engine PE operation.
    pub engine_op_pj: f64,
    /// One engine L1d access.
    pub engine_l1_access_pj: f64,
}

impl EnergyModel {
    /// Default parameters (22 nm-class, consistent with the sources the
    /// paper cites: register-file-scale ops are a few pJ, SRAM accesses
    /// tens of pJ growing with capacity, DRAM line accesses ~nJ).
    pub fn default_params() -> Self {
        EnergyModel {
            core_instr_pj: 70.0,
            l1_access_pj: 15.0,
            l2_access_pj: 46.0,
            llc_access_pj: 240.0,
            dram_access_pj: 15_000.0,
            noc_flit_hop_pj: 26.0,
            engine_op_pj: 4.0,
            engine_l1_access_pj: 8.0,
        }
    }

    /// Total dynamic energy for the events in `stats`, in picojoules,
    /// broken down by component.
    pub fn tally(&self, stats: &Stats) -> EnergyBreakdown {
        let g = |c| stats.get(c) as f64;
        let core = g(Counter::CoreInstr) * self.core_instr_pj;
        let l1 = (g(Counter::L1dHit) + g(Counter::L1dMiss)) * self.l1_access_pj;
        let l2 =
            (g(Counter::L2Hit) + g(Counter::L2Miss) + g(Counter::L2Writeback)) * self.l2_access_pj;
        let llc = (g(Counter::LlcHit) + g(Counter::LlcMiss) + g(Counter::LlcWriteback))
            * self.llc_access_pj;
        let dram = (g(Counter::DramRead) + g(Counter::DramWrite)) * self.dram_access_pj;
        let noc = g(Counter::NocFlitHops) * self.noc_flit_hop_pj;
        let engine = g(Counter::EngineInstr) * self.engine_op_pj
            + (g(Counter::EngineL1Hit) + g(Counter::EngineL1Miss)) * self.engine_l1_access_pj;
        EnergyBreakdown {
            core_pj: core,
            l1_pj: l1,
            l2_pj: l2,
            llc_pj: llc,
            dram_pj: dram,
            noc_pj: noc,
            engine_pj: engine,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_params()
    }
}

/// Dynamic energy attributed to each component, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core pipelines.
    pub core_pj: f64,
    /// L1 data caches.
    pub l1_pj: f64,
    /// Private L2s.
    pub l2_pj: f64,
    /// LLC banks.
    pub llc_pj: f64,
    /// DRAM.
    pub dram_pj: f64,
    /// Mesh NoC.
    pub noc_pj: f64,
    /// täkō engines (fabric + engine L1d).
    pub engine_pj: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.core_pj
            + self.l1_pj
            + self.l2_pj
            + self.llc_pj
            + self.dram_pj
            + self.noc_pj
            + self.engine_pj
    }

    /// Total dynamic energy in microjoules (convenience for reports).
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }
}

/// A live energy meter: a [`TxnSink`] that charges picojoules per event
/// as the transaction pipeline emits it, instead of post-hoc from the
/// counters.
///
/// For the events that flow over the bus, the accumulated total matches
/// [`EnergyModel::tally`] of the counters those events produce (a test
/// asserts this), so a bus tap can report rolling per-interval energy —
/// the per-phase accounting that "Improving the Representativeness of
/// Simulation Intervals" motivates — without touching the walk code.
/// Core-side instruction energy is not on the bus (cores charge it in
/// bulk per simulated thread), so a tap reports *hierarchy* energy.
#[derive(Debug, Clone)]
pub struct EnergyAccumulator {
    model: EnergyModel,
    total_pj: f64,
}

impl EnergyAccumulator {
    /// An empty meter using `model`'s parameters.
    pub fn new(model: EnergyModel) -> Self {
        EnergyAccumulator {
            model,
            total_pj: 0.0,
        }
    }

    /// Energy charged so far, in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.total_pj
    }

    /// Reset the running total (e.g., at an interval boundary).
    pub fn reset(&mut self) {
        self.total_pj = 0.0;
    }
}

impl Default for EnergyAccumulator {
    fn default() -> Self {
        Self::new(EnergyModel::default_params())
    }
}

impl TxnSink for EnergyAccumulator {
    #[inline]
    fn emit(&mut self, ev: TxnEvent) {
        let m = &self.model;
        self.total_pj += match ev {
            TxnEvent::Hit(l) | TxnEvent::Miss(l) => match l {
                LevelId::L1d => m.l1_access_pj,
                LevelId::L2 => m.l2_access_pj,
                LevelId::Llc => m.llc_access_pj,
            },
            TxnEvent::Writeback(LevelId::L2) => m.l2_access_pj,
            TxnEvent::Writeback(LevelId::Llc) => m.llc_access_pj,
            TxnEvent::NocHops { flits, hops } => (flits * hops) as f64 * m.noc_flit_hop_pj,
            TxnEvent::DramRead | TxnEvent::DramWrite => m.dram_access_pj,
            TxnEvent::EngineWork { instrs, .. } => instrs as f64 * m.engine_op_pj,
            _ => 0.0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_hold() {
        let e = EnergyModel::default_params();
        assert!(e.dram_access_pj > e.llc_access_pj);
        assert!(e.llc_access_pj > e.l2_access_pj);
        assert!(e.l2_access_pj > e.l1_access_pj);
        assert!(e.core_instr_pj > 10.0 * e.engine_op_pj);
    }

    #[test]
    fn tally_counts_events() {
        let e = EnergyModel::default_params();
        let mut s = Stats::new();
        s.add(Counter::DramRead, 2);
        s.add(Counter::CoreInstr, 10);
        let b = e.tally(&s);
        assert_eq!(b.dram_pj, 2.0 * e.dram_access_pj);
        assert_eq!(b.core_pj, 10.0 * e.core_instr_pj);
        assert_eq!(b.total_pj(), b.dram_pj + b.core_pj);
    }

    #[test]
    fn empty_stats_zero_energy() {
        let e = EnergyModel::default_params();
        let b = e.tally(&Stats::new());
        assert_eq!(b.total_pj(), 0.0);
        assert_eq!(b.total_uj(), 0.0);
    }

    #[test]
    fn writebacks_charged() {
        let e = EnergyModel::default_params();
        let mut s = Stats::new();
        s.add(Counter::L2Writeback, 4);
        assert_eq!(e.tally(&s).l2_pj, 4.0 * e.l2_access_pj);
    }

    /// For every walk event, the live accumulator and the post-hoc
    /// counter tally charge the same picojoules.
    #[test]
    fn live_meter_matches_post_hoc_tally() {
        use crate::event::CbPhase;
        let events = [
            TxnEvent::Hit(LevelId::L1d),
            TxnEvent::Miss(LevelId::L1d),
            TxnEvent::Hit(LevelId::L2),
            TxnEvent::Miss(LevelId::L2),
            TxnEvent::Hit(LevelId::Llc),
            TxnEvent::Miss(LevelId::Llc),
            TxnEvent::Writeback(LevelId::L2),
            TxnEvent::Writeback(LevelId::Llc),
            TxnEvent::Eviction(LevelId::L2),
            TxnEvent::Eviction(LevelId::Llc),
            TxnEvent::CoherenceInval,
            TxnEvent::NocHops { flits: 5, hops: 6 },
            TxnEvent::DramRead,
            TxnEvent::DramWrite,
            TxnEvent::MshrStall,
            TxnEvent::FlushedLine,
            TxnEvent::PrefetchIssued,
            TxnEvent::PrefetchUseful,
            TxnEvent::CallbackRun(CbPhase::OnMiss),
            TxnEvent::EngineWork {
                instrs: 11,
                mem_ops: 3,
            },
        ];
        let mut acc = EnergyAccumulator::default();
        let mut s = Stats::new();
        for ev in events {
            acc.emit(ev);
            s.emit(ev);
        }
        // The tally also charges engine-L1 and core-instr energy, but
        // none of those counters moved, so totals must agree exactly.
        let posthoc = EnergyModel::default_params().tally(&s).total_pj();
        assert!((acc.total_pj() - posthoc).abs() < 1e-9);
        acc.reset();
        assert_eq!(acc.total_pj(), 0.0);
    }
}
