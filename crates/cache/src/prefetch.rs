//! L2 stride prefetcher (Table 3).
//!
//! A small table of streams indexed by 4 KB region. When consecutive
//! demand accesses within a region exhibit a constant line-granularity
//! stride for `train_threshold` accesses, the prefetcher emits up to
//! `degree` line addresses ahead of the demand stream.
//!
//! In the HATS case study (Sec 8.2) this component is what decouples the
//! engine from the core: prefetches into the phantom stream range miss in
//! the L2 and trigger `onMiss`, so the engine fills future edges while the
//! core processes the present ones ("while the core processes one part of
//! the stream, the prefetcher triggers onMiss for subsequent edges").

use tako_mem::addr::{line_of, Addr};
use tako_sim::config::{PrefetchConfig, LINE_BYTES};

const REGION_BITS: u32 = 12;
const TABLE_SLOTS: usize = 16;

/// Upper bound on prefetches emitted per observation. Configured degrees
/// above this are clamped (the paper's prefetcher uses degree 4).
pub const MAX_PREFETCH: usize = 8;

/// A fixed-capacity batch of prefetch line addresses, returned by value
/// so the per-access hot path ([`StridePrefetcher::observe`]) performs
/// no heap allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchBatch {
    addrs: [Addr; MAX_PREFETCH],
    len: u8,
}

impl PrefetchBatch {
    #[inline]
    fn push(&mut self, addr: Addr) {
        if (self.len as usize) < MAX_PREFETCH {
            self.addrs[self.len as usize] = addr;
            self.len += 1;
        }
    }

    /// The batched addresses, in issue order.
    #[inline]
    pub fn as_slice(&self) -> &[Addr] {
        &self.addrs[..self.len as usize]
    }

    /// Number of addresses in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the observation produced no prefetches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    region: u64,
    last_line: Addr,
    stride: i64,
    confidence: u32,
    lru: u64,
}

/// A per-cache stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: PrefetchConfig,
    streams: Vec<Stream>,
    clock: u64,
}

impl StridePrefetcher {
    /// A prefetcher with `cfg`'s training/degree parameters.
    pub fn new(cfg: PrefetchConfig) -> Self {
        StridePrefetcher {
            cfg,
            streams: Vec::with_capacity(TABLE_SLOTS),
            clock: 0,
        }
    }

    /// Observe a demand access and return the line addresses to prefetch
    /// (empty if disabled, untrained, or stride zero). Allocation-free:
    /// the batch is a fixed-size value (degree clamped to
    /// [`MAX_PREFETCH`]).
    pub fn observe(&mut self, addr: Addr) -> PrefetchBatch {
        let mut batch = PrefetchBatch::default();
        if !self.cfg.enabled {
            return batch;
        }
        self.clock += 1;
        let line = line_of(addr);
        let region = addr >> REGION_BITS;
        let clock = self.clock;
        let cfg = self.cfg;

        if let Some(s) = self.streams.iter_mut().find(|s| s.region == region) {
            s.lru = clock;
            let stride = line as i64 - s.last_line as i64;
            if stride == 0 {
                return batch;
            }
            if stride == s.stride {
                s.confidence += 1;
            } else {
                s.stride = stride;
                s.confidence = 1;
            }
            s.last_line = line;
            if s.confidence >= cfg.train_threshold {
                let stride = s.stride;
                for k in 1..=cfg.degree.min(MAX_PREFETCH as u32) as i64 {
                    if let Some(a) = line.checked_add_signed(stride * k) {
                        batch.push(line_of(a));
                    }
                }
            }
            return batch;
        }

        // Allocate a new stream, evicting the LRU slot if full.
        let s = Stream {
            region,
            last_line: line,
            stride: LINE_BYTES as i64,
            confidence: 0,
            lru: clock,
        };
        if self.streams.len() < TABLE_SLOTS {
            self.streams.push(s);
        } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.lru) {
            *victim = s;
        }
        batch
    }

    /// Forget all trained streams (e.g., on a Morph flush).
    pub fn reset(&mut self) {
        self.streams.clear();
    }
}

impl tako_sim::checkpoint::Snapshot for StridePrefetcher {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("prefetch");
        w.put_u64(self.clock);
        // Vec order is preserved verbatim: slot position breaks LRU ties
        // during eviction, so a canonical re-sort would perturb timing.
        w.put_len(self.streams.len());
        for s in &self.streams {
            w.put_u64(s.region);
            w.put_u64(s.last_line);
            w.put_i64(s.stride);
            w.put_u32(s.confidence);
            w.put_u64(s.lru);
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        use tako_sim::checkpoint::SnapError;
        r.section("prefetch")?;
        self.clock = r.get_u64()?;
        let n = r.get_len()?;
        if n > TABLE_SLOTS {
            return Err(SnapError::StateMismatch(format!(
                "prefetcher snapshot holds {n} streams but the table has {TABLE_SLOTS} slots"
            )));
        }
        self.streams.clear();
        for _ in 0..n {
            self.streams.push(Stream {
                region: r.get_u64()?,
                last_line: r.get_u64()?,
                stride: r.get_i64()?,
                confidence: r.get_u32()?,
                lru: r.get_u64()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(PrefetchConfig::default())
    }

    #[test]
    fn trains_on_sequential_stream() {
        let mut p = pf();
        assert!(p.observe(0).is_empty());
        assert!(p.observe(64).is_empty()); // confidence 1
        let out = p.observe(128); // confidence 2 == threshold
        assert_eq!(out.as_slice(), [192, 256, 320, 384]);
    }

    #[test]
    fn trains_on_negative_stride() {
        let mut p = pf();
        p.observe(1024);
        p.observe(960);
        let out = p.observe(896);
        assert_eq!(out.as_slice(), [832, 768, 704, 640]);
    }

    #[test]
    fn same_line_reaccess_is_ignored() {
        let mut p = pf();
        p.observe(0);
        p.observe(64);
        assert!(p.observe(64).is_empty());
        // Stream remains trained on stride 64.
        assert_eq!(p.observe(128).len(), 4);
    }

    #[test]
    fn irregular_stream_never_fires() {
        let mut p = pf();
        p.observe(0);
        for addr in [64, 320, 128, 3776, 512] {
            assert!(p.observe(addr).is_empty());
        }
    }

    #[test]
    fn disabled_prefetcher_silent() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            enabled: false,
            ..PrefetchConfig::default()
        });
        p.observe(0);
        p.observe(64);
        assert!(p.observe(128).is_empty());
    }

    #[test]
    fn reset_forgets_training() {
        let mut p = pf();
        p.observe(0);
        p.observe(64);
        p.reset();
        assert!(p.observe(128).is_empty()); // retrains from scratch
        assert!(p.observe(192).is_empty());
        assert!(!p.observe(256).is_empty());
    }

    #[test]
    fn snapshot_roundtrip_keeps_training() {
        use tako_sim::checkpoint::{decode, encode};
        let mut p = pf();
        p.observe(0);
        p.observe(64); // confidence 1 — one access short of firing
        let snap = encode(&p);
        let mut q = pf();
        q.observe(1 << 20); // stale stream, must be overwritten
        decode(&snap, &mut q).unwrap();
        // The restored prefetcher fires on the very next access, exactly
        // like the original.
        assert_eq!(p.observe(128), q.observe(128));
        assert_eq!(q.observe(192).as_slice(), [256, 320, 384, 448]);
        assert!(q.observe((1 << 20) + 64).is_empty());
    }

    #[test]
    fn table_capacity_evicts_lru() {
        let mut p = pf();
        // Fill the table with TABLE_SLOTS distinct regions.
        for r in 0..TABLE_SLOTS as u64 + 4 {
            p.observe(r << REGION_BITS);
        }
        // Oldest streams were evicted; table keeps working.
        assert!(p.observe((1u64 << REGION_BITS) + 64).len() <= 4);
    }
}
