//! Miss-status holding registers.
//!
//! An [`MshrFile`] tracks outstanding fills at one cache: a primary miss
//! allocates an entry, secondary misses to the same line merge into it,
//! and the file bounds the number of concurrently outstanding lines.
//! täkō additionally requires that at least one MSHR is never consumed by
//! a request waiting on a callback (Sec 5.2's forward-progress rule);
//! [`MshrFile::try_alloc`] enforces the reservation.

use tako_mem::addr::Addr;
use tako_sim::Cycle;

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated: issue the fill down the hierarchy.
    Primary,
    /// The line is already being fetched; this miss merged. The payload is
    /// the completion cycle of the in-flight fill.
    Secondary(Cycle),
    /// No entry available: the request must stall.
    Full,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    completes_at: Cycle,
    for_callback: bool,
}

/// A bounded file of outstanding misses.
///
/// Entries live in a flat `Vec` rather than a map: the file holds at
/// most a few dozen lines, and at that size a linear scan is faster
/// than hashing and — unlike map-based draining — never allocates on
/// the access hot path.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<(Addr, Entry)>,
}

impl MshrFile {
    /// A file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Present a miss on `line`. `for_callback` marks requests that wait
    /// on a täkō callback; these may never occupy the last free entry.
    pub fn try_alloc(
        &mut self,
        line: Addr,
        completes_at: Cycle,
        for_callback: bool,
    ) -> MshrOutcome {
        if let Some((_, e)) = self.entries.iter().find(|(a, _)| *a == line) {
            return MshrOutcome::Secondary(e.completes_at);
        }
        let used = self.entries.len();
        let limit = if for_callback {
            self.capacity - 1
        } else {
            self.capacity
        };
        if used >= limit {
            return MshrOutcome::Full;
        }
        self.entries.push((
            line,
            Entry {
                completes_at,
                for_callback,
            },
        ));
        MshrOutcome::Primary
    }

    /// Retire all entries whose fill completed at or before `now`;
    /// returns the earliest completion among the retired (if any).
    #[inline]
    pub fn drain(&mut self, now: Cycle) -> Option<Cycle> {
        let mut earliest = None;
        let mut i = 0;
        while i < self.entries.len() {
            let done = self.entries[i].1.completes_at;
            if done <= now {
                self.entries.swap_remove(i);
                earliest = Some(match earliest {
                    None => done,
                    Some(x) => done.min(x),
                });
            } else {
                i += 1;
            }
        }
        earliest
    }

    /// Completion cycle of the in-flight fill for `line`, if any.
    pub fn inflight(&self, line: Addr) -> Option<Cycle> {
        self.entries
            .iter()
            .find(|(a, _)| *a == line)
            .map(|(_, e)| e.completes_at)
    }

    /// Number of outstanding entries held by callback-waiting requests.
    pub fn callback_entries(&self) -> usize {
        self.entries.iter().filter(|(_, e)| e.for_callback).count()
    }

    /// Earliest completion among all outstanding fills (what a stalled
    /// request should wait for).
    pub fn earliest_completion(&self) -> Option<Cycle> {
        self.entries.iter().map(|(_, e)| e.completes_at).min()
    }

    /// The file's total entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a fresh allocation would succeed right now (secondary
    /// merges aside). Mirrors [`MshrFile::try_alloc`]'s reservation:
    /// callback-waiting requests may not take the last free entry.
    pub fn can_alloc(&self, for_callback: bool) -> bool {
        let limit = if for_callback {
            self.capacity - 1
        } else {
            self.capacity
        };
        self.entries.len() < limit
    }

    /// Number of outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no fills are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl tako_sim::checkpoint::Snapshot for MshrFile {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("mshr");
        w.put_usize(self.capacity);
        // Canonical order: HashMap iteration order is not deterministic,
        // so entries are written sorted by address.
        let mut entries: Vec<(Addr, Entry)> = self.entries.clone();
        entries.sort_unstable_by_key(|(a, _)| *a);
        w.put_len(entries.len());
        for (addr, e) in entries {
            w.put_u64(addr);
            w.put_u64(e.completes_at);
            w.put_bool(e.for_callback);
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        use tako_sim::checkpoint::SnapError;
        r.section("mshr")?;
        let capacity = r.get_usize()?;
        if capacity != self.capacity {
            return Err(SnapError::StateMismatch(format!(
                "MSHR capacity: snapshot {capacity}, rebuilt {}",
                self.capacity
            )));
        }
        let n = r.get_len()?;
        if n > capacity {
            return Err(SnapError::StateMismatch(format!(
                "MSHR snapshot holds {n} entries but capacity is {capacity}"
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            let addr = r.get_u64()?;
            let completes_at = r.get_u64()?;
            let for_callback = r.get_bool()?;
            self.entries.push((
                addr,
                Entry {
                    completes_at,
                    for_callback,
                },
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.try_alloc(64, 100, false), MshrOutcome::Primary);
        assert_eq!(m.try_alloc(64, 999, false), MshrOutcome::Secondary(100));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_bound() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.try_alloc(0, 10, false), MshrOutcome::Primary);
        assert_eq!(m.try_alloc(64, 10, false), MshrOutcome::Primary);
        assert_eq!(m.try_alloc(128, 10, false), MshrOutcome::Full);
    }

    #[test]
    fn callback_reservation() {
        let mut m = MshrFile::new(2);
        // A callback-waiting request may not take the last entry.
        assert_eq!(m.try_alloc(0, 10, true), MshrOutcome::Primary);
        assert_eq!(m.try_alloc(64, 10, true), MshrOutcome::Full);
        // ...but a plain request may.
        assert_eq!(m.try_alloc(64, 10, false), MshrOutcome::Primary);
    }

    #[test]
    fn drain_retires_completed() {
        let mut m = MshrFile::new(4);
        m.try_alloc(0, 10, false);
        m.try_alloc(64, 20, false);
        assert_eq!(m.drain(15), Some(10));
        assert_eq!(m.len(), 1);
        assert_eq!(m.inflight(64), Some(20));
        assert_eq!(m.earliest_completion(), Some(20));
        m.drain(25);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        MshrFile::new(0);
    }

    #[test]
    fn fill_to_capacity_then_drain_frees() {
        let mut m = MshrFile::new(4);
        for i in 0..4u64 {
            assert_eq!(m.try_alloc(i * 64, 100 + i, false), MshrOutcome::Primary);
        }
        assert_eq!(m.len(), m.capacity());
        assert!(!m.can_alloc(false));
        assert!(!m.can_alloc(true));
        assert_eq!(m.try_alloc(1024, 200, false), MshrOutcome::Full);
        // Retiring one fill makes room for a plain request, but the
        // callback reservation still needs two free entries.
        assert_eq!(m.drain(100), Some(100));
        assert!(m.can_alloc(false));
        assert!(!m.can_alloc(true));
        assert_eq!(m.try_alloc(1024, 200, false), MshrOutcome::Primary);
    }

    #[test]
    fn reservation_held_across_fills() {
        let mut m = MshrFile::new(3);
        // Callback-waiting requests can take all but the last entry...
        assert_eq!(m.try_alloc(0, 50, true), MshrOutcome::Primary);
        assert_eq!(m.try_alloc(64, 60, true), MshrOutcome::Primary);
        assert_eq!(m.callback_entries(), 2);
        assert_eq!(m.try_alloc(128, 70, true), MshrOutcome::Full);
        // ...the reserved entry serves a plain miss, which can then
        // merge secondaries even while the file is full.
        assert_eq!(m.try_alloc(128, 70, false), MshrOutcome::Primary);
        assert_eq!(m.try_alloc(128, 999, true), MshrOutcome::Secondary(70));
        // As fills retire, the reservation re-opens for callbacks.
        assert_eq!(m.drain(55), Some(50));
        assert!(m.can_alloc(false));
        assert!(!m.can_alloc(true));
        assert_eq!(m.drain(70), Some(60));
        assert!(m.can_alloc(true));
        assert_eq!(m.try_alloc(192, 200, true), MshrOutcome::Primary);
    }

    #[test]
    fn snapshot_roundtrip_restores_outstanding_fills() {
        use tako_sim::checkpoint::{decode, encode, SnapError};
        let mut m = MshrFile::new(8);
        m.try_alloc(0, 100, false);
        m.try_alloc(64, 120, true);
        m.try_alloc(640, 90, false);
        let snap = encode(&m);
        let mut n = MshrFile::new(8);
        n.try_alloc(4096, 5, false); // stale state, must be overwritten
        decode(&snap, &mut n).unwrap();
        assert_eq!(n.len(), 3);
        assert_eq!(n.inflight(64), Some(120));
        assert_eq!(n.inflight(4096), None);
        assert_eq!(n.callback_entries(), 1);
        assert_eq!(n.earliest_completion(), Some(90));
        // Capacity is structural: restoring into a different file is loud.
        let mut wrong = MshrFile::new(4);
        assert!(matches!(
            decode(&snap, &mut wrong),
            Err(SnapError::StateMismatch(_))
        ));
    }

    #[test]
    fn drain_is_leak_free() {
        let mut m = MshrFile::new(8);
        for round in 0..10u64 {
            for i in 0..8u64 {
                let addr = (round * 8 + i) * 64;
                assert_eq!(
                    m.try_alloc(addr, round * 100 + i, i % 2 == 0),
                    MshrOutcome::Primary
                );
            }
            assert_eq!(m.len(), 8);
            m.drain(round * 100 + 7);
            assert!(m.is_empty(), "round {round} leaked entries");
            assert_eq!(m.callback_entries(), 0);
            assert_eq!(m.earliest_completion(), None);
        }
    }
}
