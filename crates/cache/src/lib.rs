//! # tako-cache — cache building blocks
//!
//! Reusable components of the simulated cache hierarchy:
//!
//! * [`mod@array`] — set-associative tag/state arrays with pluggable
//!   replacement ([`tako_sim::config::ReplPolicy`]): LRU, SRRIP, and the
//!   paper's **trrîp** (Sec 5.2), which inserts engine-issued fills at
//!   distant re-reference priority and guarantees that every set keeps at
//!   least one line whose eviction triggers no callback (the deadlock-
//!   avoidance invariant of Sec 5.2).
//! * [`mshr`] — miss-status holding registers: merge secondary misses and
//!   bound outstanding fills.
//! * [`prefetch`] — the L2 stride prefetcher of Table 3. In the HATS case
//!   study this is the component that drives decoupling: its prefetches
//!   into a phantom range trigger `onMiss` ahead of the core.
//!
//! The hierarchy walk itself (which level talks to which, coherence,
//! callback interposition) lives in `tako-core`, which assembles these
//! blocks into a full system.

pub mod array;
pub mod mshr;
pub mod prefetch;

pub use array::{CacheArray, EntryMut, EntryRef, EvictCause, EvictEvent, InsertKind, TagEntry};
pub use mshr::MshrFile;
pub use prefetch::{PrefetchBatch, StridePrefetcher};
