//! Set-associative tag arrays with LRU / SRRIP / trrîp replacement,
//! stored struct-of-arrays for data-oriented set scans.
//!
//! The arrays track timing-relevant state only; data lives in the backing
//! store (`tako_mem::PhysMem`). Each entry carries:
//!
//! * `dirty` — needs a writeback on eviction,
//! * `morph` — a Morph is registered for this line at this level, so
//!   evicting it triggers a callback (set from the GET request's
//!   registration bits, Sec 5.2),
//! * `ready_at` — the cycle the fill (or the callback locking the line)
//!   completes; accesses before this cycle stall until it,
//! * `prefetched` — inserted by the prefetcher and not yet demanded,
//! * `sharers` / `owner` — directory state, used only in LLC banks.
//!
//! ## Storage layout
//!
//! Entries are *not* stored as an array of structs. Each field lives in
//! its own parallel vector, indexed by `set * ways + way`:
//!
//! ```text
//!   tags:     [ t0 t1 t2 t3 t4 t5 t6 t7 | t0 t1 ... ]   8 B each
//!   rrpv:     [ r0 r1 r2 r3 r4 r5 r6 r7 | ...       ]   1 B each
//!   lru:      [ l0 l1 ...                           ]   8 B each
//!   ready_at: [ ...                                 ]   8 B each
//!   flags:    [ f0 f1 ...  dirty|morph|pref|excl    ]   1 B each
//!   sharers:  [ ...        LLC directory only       ]   8 B each
//!   owner:    [ ...        0xFF = none              ]   1 B each
//! ```
//!
//! A probe of an 8-way set reads exactly one 64-byte host cache line of
//! tags; a victim scan touches the tag line plus the 8-byte rrpv/flags
//! slivers, instead of striding across eight 64-byte-padded structs.
//! Validity is folded into the tag word: `TAG_INVALID` (`Addr::MAX`,
//! never a line-aligned address) marks an empty way, so the hit scan is
//! a single equality compare per way with no separate valid-bit load.
//!
//! Because fields live in parallel vectors, the probe/lookup API hands
//! out [`EntryRef`]/[`EntryMut`] index handles with inline accessors
//! rather than `&TagEntry` borrows; [`TagEntry`] remains as the *value*
//! vocabulary for iteration and tests.
//!
//! ## trrîp
//!
//! trrîp is SRRIP \[62\] with two täkō-specific changes (Sec 5.2):
//! engine-issued fills insert at the most distant RRPV so callback traffic
//! does not pollute the cache, and victim selection preserves the
//! invariant that **every set retains at least one line whose eviction
//! triggers no callback** — otherwise a full callback buffer could
//! deadlock the cache. [`CacheArray::insert`] upholds the invariant and a
//! property test exercises it.

use tako_mem::addr::{Addr, AddrRange};
use tako_sim::config::{CacheConfig, ReplPolicy, LINE_BYTES};
use tako_sim::Cycle;

/// Maximum (most distant) re-reference prediction value for 2-bit RRIP.
const RRPV_MAX: u8 = 3;
/// Insertion RRPV for demand fills under (t)rrîp.
const RRPV_LONG: u8 = 2;

/// Tag word of an empty way. `Addr::MAX` is never a line-aligned
/// address, so a tag equality compare can never alias it.
const TAG_INVALID: Addr = Addr::MAX;

/// `flags` bit: line differs from the next level / backing store.
const F_DIRTY: u8 = 1 << 0;
/// `flags` bit: a Morph is registered for this line at this level.
const F_MORPH: u8 = 1 << 1;
/// `flags` bit: inserted by the prefetcher and not yet demanded.
const F_PREFETCHED: u8 = 1 << 2;
/// `flags` bit: private caches — this tile holds the only copy.
const F_EXCLUSIVE: u8 = 1 << 3;

/// `owner` byte of an entry with no modified owner.
const OWNER_NONE: u8 = u8::MAX;

/// Who is inserting a line — determines insertion priority under trrîp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertKind {
    /// Demand fill from a core-side access.
    Demand,
    /// Fill issued by the L2 stride prefetcher.
    Prefetch,
    /// Fill issued by a täkō engine executing a callback (inserted at
    /// distant priority by trrîp to avoid pollution, Sec 5.2).
    Engine,
}

/// One tag entry, as a value. The array stores these fields in parallel
/// vectors; this struct is the assembled view returned by [`CacheArray::iter`]
/// and [`EntryRef::get`] for callers that want a plain snapshot of a way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagEntry {
    /// Line-aligned address.
    pub line: Addr,
    /// Entry holds a valid line.
    pub valid: bool,
    /// Line differs from the next level / backing store.
    pub dirty: bool,
    /// A Morph is registered for this line at this cache level.
    pub morph: bool,
    /// Re-reference prediction value (RRIP policies).
    pub rrpv: u8,
    /// Last-touch stamp (LRU policy).
    pub lru_stamp: u64,
    /// Cycle at which the line's fill or locking callback completes.
    pub ready_at: Cycle,
    /// Inserted by the prefetcher and not yet demanded.
    pub prefetched: bool,
    /// Private caches: this tile holds the only copy (silent write hits).
    pub exclusive: bool,
    /// Directory: bitmask of tiles holding the line (LLC banks only).
    pub sharers: u64,
    /// Directory: tile holding the line modified, if any (LLC banks only).
    pub owner: Option<u8>,
}

/// Why a line left the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictCause {
    /// Displaced by an insert (the replacement policy chose it).
    Capacity,
    /// Explicitly removed ([`CacheArray::invalidate`]): coherence
    /// shoot-down, inclusion back-invalidate, flushData, or a Morph
    /// (un)registration range flush.
    Invalidation,
}

/// What fell out of the array on an insert or invalidate, and why.
///
/// The transaction pipeline routes these to the eviction stages
/// (`handle_l2_evict` / `handle_llc_evict` in `tako-core`), which decide
/// between discard, writeback, and Morph callbacks from this state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictEvent {
    /// Why the line left the array.
    pub cause: EvictCause,
    /// Line-aligned address of the victim.
    pub line: Addr,
    /// The victim was dirty (needs a writeback / onWriteback).
    pub dirty: bool,
    /// The victim had a Morph registered (needs a callback).
    pub morph: bool,
    /// The victim was prefetched and never demanded (wasted prefetch).
    pub prefetched_unused: bool,
    /// Directory state carried out of LLC banks: tiles holding copies.
    pub sharers: u64,
    /// Directory state carried out of LLC banks: modified owner.
    pub owner: Option<u8>,
}

/// Rollback record for one speculatively touched slot: the
/// replacement-relevant state a pure lane step can mutate. Captured by
/// [`CacheArray::slot_undo`], restored by [`CacheArray::restore_slot`].
#[derive(Debug, Clone, Copy)]
pub struct SlotUndo {
    slot: usize,
    rrpv: u8,
    lru: u64,
    flags: u8,
}

/// A set-associative cache tag array with struct-of-arrays storage.
#[derive(Debug, Clone)]
pub struct CacheArray {
    cfg: CacheConfig,
    sets: usize,
    ways: usize,
    /// Precomputed right-shift from an address to its set-index bits:
    /// the line-offset bits plus any bank-select bits (`index_shift`).
    set_shift: u32,
    /// `sets - 1` when `sets` is a power of two (the common geometry);
    /// set selection is then a single mask instead of a modulo.
    set_mask: u64,
    pow2_sets: bool,
    /// Tag words, [`TAG_INVALID`] for empty ways. The hit scan touches
    /// only this vector: for 8 ways that is one host cache line.
    tags: Vec<Addr>,
    /// Re-reference prediction values (RRIP policies).
    rrpv: Vec<u8>,
    /// Last-touch stamps (LRU policy and trrîp tie-breaks).
    lru: Vec<u64>,
    /// Fill/lock completion cycles.
    ready: Vec<Cycle>,
    /// Bit-packed `F_DIRTY | F_MORPH | F_PREFETCHED | F_EXCLUSIVE`.
    flags: Vec<u8>,
    /// Directory sharer masks (LLC banks only).
    sharers: Vec<u64>,
    /// Directory modified owner, [`OWNER_NONE`] if none (LLC banks only).
    owner: Vec<u8>,
    stamp: u64,
}

impl CacheArray {
    /// An empty array with `cfg`'s geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        Self::with_index_shift(cfg, 0)
    }

    /// An empty array whose set index skips the low `index_shift` bits of
    /// the line number. Banked caches (the LLC) select the bank from
    /// those bits, so the bank's own index must not reuse them —
    /// otherwise only `sets >> index_shift` sets are ever addressed.
    pub fn with_index_shift(cfg: CacheConfig, index_shift: u32) -> Self {
        let sets = cfg.sets() as usize;
        let ways = cfg.ways as usize;
        let n = sets * ways;
        CacheArray {
            cfg,
            sets,
            ways,
            set_shift: LINE_BYTES.trailing_zeros() + index_shift,
            set_mask: sets as u64 - 1,
            pow2_sets: sets.is_power_of_two(),
            tags: vec![TAG_INVALID; n],
            rrpv: vec![RRPV_MAX; n],
            lru: vec![0; n],
            ready: vec![0; n],
            flags: vec![0; n],
            sharers: vec![0; n],
            owner: vec![OWNER_NONE; n],
            stamp: 0,
        }
    }

    /// The geometry/timing configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The set `line` maps to in this array (diagnostics: watchdog
    /// snapshots and the protocol checker name blocked sets with it).
    pub fn set_index(&self, line: Addr) -> usize {
        self.set_of(line)
    }

    #[inline(always)]
    fn set_of(&self, line: Addr) -> usize {
        let idx = line >> self.set_shift;
        if self.pow2_sets {
            (idx & self.set_mask) as usize
        } else {
            (idx % self.sets as u64) as usize
        }
    }

    /// Slot index of `line` if present: one equality scan over the set's
    /// tag words, nothing else touched.
    #[inline(always)]
    fn find(&self, line: Addr) -> Option<usize> {
        let base = self.set_of(line) * self.ways;
        let tags = &self.tags[base..base + self.ways];
        tags.iter().position(|&t| t == line).map(|w| base + w)
    }

    /// Clear slot `i` back to the empty-way state.
    #[inline]
    fn clear_slot(&mut self, i: usize) {
        self.tags[i] = TAG_INVALID;
        self.rrpv[i] = RRPV_MAX;
        self.lru[i] = 0;
        self.ready[i] = 0;
        self.flags[i] = 0;
        self.sharers[i] = 0;
        self.owner[i] = OWNER_NONE;
    }

    /// Assemble the value view of slot `i`.
    #[inline]
    fn entry_at(&self, i: usize) -> TagEntry {
        let f = self.flags[i];
        TagEntry {
            line: self.tags[i],
            valid: self.tags[i] != TAG_INVALID,
            dirty: f & F_DIRTY != 0,
            morph: f & F_MORPH != 0,
            rrpv: self.rrpv[i],
            lru_stamp: self.lru[i],
            ready_at: self.ready[i],
            prefetched: f & F_PREFETCHED != 0,
            exclusive: f & F_EXCLUSIVE != 0,
            sharers: self.sharers[i],
            owner: (self.owner[i] != OWNER_NONE).then_some(self.owner[i]),
        }
    }

    /// Find `line` in the array.
    #[inline(always)]
    pub fn probe(&self, line: Addr) -> Option<EntryRef<'_>> {
        self.find(line).map(|i| EntryRef { a: self, i })
    }

    /// Find `line` in the array, mutably.
    #[inline(always)]
    pub fn probe_mut(&mut self, line: Addr) -> Option<EntryMut<'_>> {
        self.find(line).map(move |i| EntryMut { a: self, i })
    }

    /// The per-access hit path: find `line` and, if present, promote it
    /// per the replacement policy in the same walk, returning a handle to
    /// the promoted entry so callers can read/update state bits (dirty,
    /// sharers, prefetched) without a second tag walk. Performs no heap
    /// allocation. Callers that consume the prefetched flag clear it via
    /// the returned handle; [`CacheArray::touch`] does both.
    #[inline(always)]
    pub fn lookup(&mut self, line: Addr) -> Option<EntryMut<'_>> {
        self.stamp += 1;
        let stamp = self.stamp;
        let i = self.find(line)?;
        match self.cfg.repl {
            ReplPolicy::Lru => self.lru[i] = stamp,
            ReplPolicy::Rrip | ReplPolicy::Trrip => self.rrpv[i] = 0,
        }
        Some(EntryMut { a: self, i })
    }

    /// Record a hit on `line`: promote it per the replacement policy and
    /// clear its prefetched flag. Returns false if the line is absent.
    #[inline]
    pub fn touch(&mut self, line: Addr) -> bool {
        match self.lookup(line) {
            Some(mut e) => {
                e.set_prefetched(false);
                true
            }
            None => false,
        }
    }

    /// The monotone touch stamp backing LRU promotion. Exposed (with
    /// [`CacheArray::set_touch_stamp`]) so a speculative lane step can
    /// be rolled back exactly: `lookup` advances the stamp even on a
    /// miss, so undo must restore it alongside the touched slot.
    #[inline]
    pub fn touch_stamp(&self) -> u64 {
        self.stamp
    }

    /// Overwrite the touch stamp (lane-step rollback only).
    #[inline]
    pub fn set_touch_stamp(&mut self, v: u64) {
        self.stamp = v;
    }

    /// Capture the replacement-relevant state of the slot holding
    /// `line`, for lane-step rollback. A pure (L1-hit) step mutates only
    /// rrpv/LRU promotion state and the flag byte — tags, fill times,
    /// sharers, and ownership are untouched — so this triple plus the
    /// touch stamp is a complete undo record for the slot.
    #[inline]
    pub fn slot_undo(&self, line: Addr) -> Option<SlotUndo> {
        self.find(line).map(|i| SlotUndo {
            slot: i,
            rrpv: self.rrpv[i],
            lru: self.lru[i],
            flags: self.flags[i],
        })
    }

    /// Restore a capture taken by [`CacheArray::slot_undo`].
    #[inline]
    pub fn restore_slot(&mut self, u: SlotUndo) {
        self.rrpv[u.slot] = u.rrpv;
        self.lru[u.slot] = u.lru;
        self.flags[u.slot] = u.flags;
    }

    /// Choose a victim way in `set` for inserting a line with
    /// `inserting_morph`. Prefers invalid ways; otherwise follows the
    /// replacement policy; under trrîp, refuses to evict the set's last
    /// callback-free line when the incoming line has a Morph.
    ///
    /// Runs as a single pass over the set that gathers every candidate
    /// the policies need (first invalid way, LRU way, first max-RRPV
    /// way, callback-free population, most-distant Morph line); only
    /// RRIP aging revisits the set, and at most once.
    fn victim(&mut self, set: usize, inserting_morph: bool) -> usize {
        let repl = self.cfg.repl;
        let base = set * self.ways;
        let mut invalid = None;
        let mut lru_way = 0usize;
        let mut lru_min = u64::MAX;
        let mut rrpv_way = 0usize;
        let mut rrpv_max = 0u8;
        let mut callback_free = 0usize;
        let mut morph_way = None;
        let mut morph_key = (0u8, 0u64);
        for w in 0..self.ways {
            let i = base + w;
            if self.tags[i] == TAG_INVALID {
                if invalid.is_none() {
                    invalid = Some(w);
                }
                callback_free += 1;
                continue;
            }
            if self.lru[i] < lru_min {
                lru_min = self.lru[i];
                lru_way = w;
            }
            if self.rrpv[i] > rrpv_max {
                rrpv_max = self.rrpv[i];
                rrpv_way = w;
            }
            if self.flags[i] & F_MORPH == 0 {
                callback_free += 1;
            } else {
                let key = (self.rrpv[i], u64::MAX - self.lru[i]);
                if morph_way.is_none() || key > morph_key {
                    morph_way = Some(w);
                    morph_key = key;
                }
            }
        }
        // trrîp deadlock avoidance (Sec 5.2): a Morph line may never
        // consume the set's last callback-free way (invalid or plain).
        if repl == ReplPolicy::Trrip && inserting_morph && callback_free <= 1 {
            if let Some(w) = morph_way {
                return w;
            }
        }
        if let Some(w) = invalid {
            return w;
        }
        match repl {
            ReplPolicy::Lru => lru_way,
            ReplPolicy::Rrip | ReplPolicy::Trrip => {
                // SRRIP aging, batched: instead of repeated +1 sweeps
                // until some line reaches RRPV_MAX, add the deficit once.
                // (Only reached when every way is valid, so the sweep
                // touches live rrpv bytes only.)
                let age = RRPV_MAX - rrpv_max;
                if age > 0 {
                    for r in &mut self.rrpv[base..base + self.ways] {
                        *r += age;
                    }
                }
                rrpv_way
            }
        }
    }

    /// Insert `line`, returning the evicted line if a valid one was
    /// displaced. `ready_at` is when the fill (or the callback holding the
    /// line locked) completes.
    #[inline]
    pub fn insert(
        &mut self,
        line: Addr,
        dirty: bool,
        morph: bool,
        kind: InsertKind,
        ready_at: Cycle,
    ) -> Option<EvictEvent> {
        debug_assert_eq!(line % LINE_BYTES, 0, "insert of unaligned line");
        debug_assert!(self.probe(line).is_none(), "insert of already-present line");
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(line);
        let way = self.victim(set, morph);
        let i = set * self.ways + way;
        let evicted = (self.tags[i] != TAG_INVALID).then(|| {
            let f = self.flags[i];
            EvictEvent {
                cause: EvictCause::Capacity,
                line: self.tags[i],
                dirty: f & F_DIRTY != 0,
                morph: f & F_MORPH != 0,
                prefetched_unused: f & F_PREFETCHED != 0,
                sharers: self.sharers[i],
                owner: (self.owner[i] != OWNER_NONE).then_some(self.owner[i]),
            }
        });
        self.tags[i] = line;
        self.rrpv[i] = match (self.cfg.repl, kind) {
            (ReplPolicy::Trrip, InsertKind::Engine) => RRPV_MAX,
            _ => RRPV_LONG,
        };
        self.lru[i] = stamp;
        self.ready[i] = ready_at;
        self.flags[i] = (dirty as u8 * F_DIRTY)
            | (morph as u8 * F_MORPH)
            | ((kind == InsertKind::Prefetch) as u8 * F_PREFETCHED);
        self.sharers[i] = 0;
        self.owner[i] = OWNER_NONE;
        evicted
    }

    /// Remove `line` if present, returning its eviction record.
    #[inline]
    pub fn invalidate(&mut self, line: Addr) -> Option<EvictEvent> {
        let i = self.find(line)?;
        let f = self.flags[i];
        let ev = EvictEvent {
            cause: EvictCause::Invalidation,
            line: self.tags[i],
            dirty: f & F_DIRTY != 0,
            morph: f & F_MORPH != 0,
            prefetched_unused: f & F_PREFETCHED != 0,
            sharers: self.sharers[i],
            owner: (self.owner[i] != OWNER_NONE).then_some(self.owner[i]),
        };
        self.clear_slot(i);
        Some(ev)
    }

    /// All valid lines whose address falls in `range` (used by flushData's
    /// tag-array walk, Sec 4.4). Scans only the tag vector.
    pub fn lines_in_range(&self, range: AddrRange) -> Vec<Addr> {
        self.tags
            .iter()
            .copied()
            .filter(|&t| t != TAG_INVALID && range.contains(t))
            .collect()
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count()
    }

    /// Check the trrîp deadlock-avoidance invariant: no set consists
    /// entirely of Morph-registered valid lines. (Vacuously true for sets
    /// with an invalid way.)
    pub fn morph_invariant_holds(&self) -> bool {
        (0..self.sets).all(|s| {
            let base = s * self.ways;
            (base..base + self.ways)
                .any(|i| self.tags[i] == TAG_INVALID || self.flags[i] & F_MORPH == 0)
        })
    }

    /// Iterate over all valid entries, as assembled values.
    pub fn iter(&self) -> impl Iterator<Item = TagEntry> + '_ {
        (0..self.tags.len())
            .filter(|&i| self.tags[i] != TAG_INVALID)
            .map(|i| self.entry_at(i))
    }
}

/// Shared handle to one occupied way: inline field reads against the
/// parallel vectors. Obtained from [`CacheArray::probe`].
#[derive(Debug)]
pub struct EntryRef<'a> {
    a: &'a CacheArray,
    i: usize,
}

/// Mutable handle to one occupied way. Obtained from
/// [`CacheArray::probe_mut`] / [`CacheArray::lookup`]. Setters write the
/// single affected field vector; nothing else moves.
#[derive(Debug)]
pub struct EntryMut<'a> {
    a: &'a mut CacheArray,
    i: usize,
}

macro_rules! entry_getters {
    ($ty:ident) => {
        impl $ty<'_> {
            /// Line-aligned address held by this way.
            #[inline(always)]
            pub fn line(&self) -> Addr {
                self.a.tags[self.i]
            }

            /// Line differs from the next level / backing store.
            #[inline(always)]
            pub fn dirty(&self) -> bool {
                self.a.flags[self.i] & F_DIRTY != 0
            }

            /// A Morph is registered for this line at this level.
            #[inline(always)]
            pub fn morph(&self) -> bool {
                self.a.flags[self.i] & F_MORPH != 0
            }

            /// Inserted by the prefetcher and not yet demanded.
            #[inline(always)]
            pub fn prefetched(&self) -> bool {
                self.a.flags[self.i] & F_PREFETCHED != 0
            }

            /// Private caches: this tile holds the only copy.
            #[inline(always)]
            pub fn exclusive(&self) -> bool {
                self.a.flags[self.i] & F_EXCLUSIVE != 0
            }

            /// Cycle the line's fill or locking callback completes.
            #[inline(always)]
            pub fn ready_at(&self) -> Cycle {
                self.a.ready[self.i]
            }

            /// Directory: bitmask of tiles holding the line.
            #[inline(always)]
            pub fn sharers(&self) -> u64 {
                self.a.sharers[self.i]
            }

            /// Directory: tile holding the line modified, if any.
            #[inline(always)]
            pub fn owner(&self) -> Option<u8> {
                let o = self.a.owner[self.i];
                (o != OWNER_NONE).then_some(o)
            }

            /// The assembled value view of this way.
            #[inline]
            pub fn get(&self) -> TagEntry {
                self.a.entry_at(self.i)
            }
        }
    };
}

entry_getters!(EntryRef);
entry_getters!(EntryMut);

impl EntryMut<'_> {
    #[inline(always)]
    fn set_flag(&mut self, bit: u8, v: bool) {
        if v {
            self.a.flags[self.i] |= bit;
        } else {
            self.a.flags[self.i] &= !bit;
        }
    }

    /// Set/clear the dirty bit.
    #[inline(always)]
    pub fn set_dirty(&mut self, v: bool) {
        self.set_flag(F_DIRTY, v);
    }

    /// Set/clear the prefetched bit.
    #[inline(always)]
    pub fn set_prefetched(&mut self, v: bool) {
        self.set_flag(F_PREFETCHED, v);
    }

    /// Set/clear the exclusive bit.
    #[inline(always)]
    pub fn set_exclusive(&mut self, v: bool) {
        self.set_flag(F_EXCLUSIVE, v);
    }

    /// Overwrite the directory sharer mask.
    #[inline(always)]
    pub fn set_sharers(&mut self, mask: u64) {
        self.a.sharers[self.i] = mask;
    }

    /// Overwrite the directory modified owner.
    #[inline(always)]
    pub fn set_owner(&mut self, owner: Option<u8>) {
        self.a.owner[self.i] = owner.unwrap_or(OWNER_NONE);
    }

    /// Overwrite the RRPV (demotion paths).
    #[inline(always)]
    pub fn set_rrpv(&mut self, v: u8) {
        self.a.rrpv[self.i] = v;
    }

    /// Overwrite the LRU stamp (demotion paths).
    #[inline(always)]
    pub fn set_lru_stamp(&mut self, v: u64) {
        self.a.lru[self.i] = v;
    }
}

impl tako_sim::checkpoint::Snapshot for CacheArray {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("array");
        // Geometry is config-derived, not restored; it is written so load
        // can verify the snapshot matches the rebuilt array. The body is
        // the SoA vectors field-by-field (SNAP_VERSION 3 layout).
        w.put_u64(self.sets as u64);
        w.put_u64(self.ways as u64);
        w.put_u64(self.stamp);
        w.put_len(self.tags.len());
        for &t in &self.tags {
            w.put_u64(t);
        }
        for &r in &self.rrpv {
            w.put_u8(r);
        }
        for &l in &self.lru {
            w.put_u64(l);
        }
        for &c in &self.ready {
            w.put_u64(c);
        }
        for &f in &self.flags {
            w.put_u8(f);
        }
        for &s in &self.sharers {
            w.put_u64(s);
        }
        for &o in &self.owner {
            w.put_u8(o);
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        use tako_sim::checkpoint::SnapError;
        r.section("array")?;
        let sets = r.get_u64()?;
        let ways = r.get_u64()?;
        if sets != self.sets as u64 || ways != self.ways as u64 {
            return Err(SnapError::StateMismatch(format!(
                "cache array geometry: snapshot {sets}x{ways}, rebuilt {}x{}",
                self.sets, self.ways
            )));
        }
        self.stamp = r.get_u64()?;
        r.get_len_expect("cache array entries", self.tags.len())?;
        for t in &mut self.tags {
            *t = r.get_u64()?;
        }
        for v in &mut self.rrpv {
            *v = r.get_u8()?;
        }
        for l in &mut self.lru {
            *l = r.get_u64()?;
        }
        for c in &mut self.ready {
            *c = r.get_u64()?;
        }
        for f in &mut self.flags {
            *f = r.get_u8()?;
        }
        for s in &mut self.sharers {
            *s = r.get_u64()?;
        }
        for o in &mut self.owner {
            *o = r.get_u8()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::rng::Rng;

    fn tiny(repl: ReplPolicy) -> CacheArray {
        // 4 sets x 2 ways.
        CacheArray::new(CacheConfig {
            size_bytes: 8 * LINE_BYTES,
            ways: 2,
            tag_latency: 1,
            data_latency: 1,
            repl,
            mshrs: 4,
        })
    }

    fn line(set: u64, k: u64) -> Addr {
        (set + 4 * k) * LINE_BYTES
    }

    #[test]
    fn insert_probe_touch() {
        let mut a = tiny(ReplPolicy::Lru);
        assert!(a
            .insert(line(0, 0), false, false, InsertKind::Demand, 0)
            .is_none());
        assert!(a.probe(line(0, 0)).is_some());
        assert!(a.touch(line(0, 0)));
        assert!(!a.touch(line(1, 0)));
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut a = tiny(ReplPolicy::Lru);
        a.insert(line(0, 0), false, false, InsertKind::Demand, 0);
        a.insert(line(0, 1), true, false, InsertKind::Demand, 0);
        a.touch(line(0, 0)); // 0 is now MRU
        let ev = a
            .insert(line(0, 2), false, false, InsertKind::Demand, 0)
            .expect("eviction");
        assert_eq!(ev.line, line(0, 1));
        assert!(ev.dirty);
        assert_eq!(ev.cause, EvictCause::Capacity);
    }

    #[test]
    fn rrip_promotes_on_hit() {
        let mut a = tiny(ReplPolicy::Rrip);
        a.insert(line(0, 0), false, false, InsertKind::Demand, 0);
        a.insert(line(0, 1), false, false, InsertKind::Demand, 0);
        a.touch(line(0, 0)); // rrpv -> 0
        let ev = a
            .insert(line(0, 2), false, false, InsertKind::Demand, 0)
            .expect("eviction");
        assert_eq!(ev.line, line(0, 1));
    }

    #[test]
    fn trrip_engine_fills_evict_first() {
        let mut a = tiny(ReplPolicy::Trrip);
        a.insert(line(0, 0), false, false, InsertKind::Demand, 0);
        a.insert(line(0, 1), false, false, InsertKind::Engine, 0);
        // Engine fill sits at distant RRPV: it is the next victim even
        // though it was inserted more recently.
        let ev = a
            .insert(line(0, 2), false, false, InsertKind::Demand, 0)
            .expect("eviction");
        assert_eq!(ev.line, line(0, 1));
    }

    #[test]
    fn trrip_preserves_callback_free_line() {
        let mut a = tiny(ReplPolicy::Trrip);
        a.insert(line(0, 0), false, true, InsertKind::Demand, 0);
        a.insert(line(0, 1), false, false, InsertKind::Demand, 0);
        a.touch(line(0, 1)); // plain line is MRU; naive policy would evict 0...
        a.touch(line(0, 0)); // now morph line is MRU; victim would be plain line 1
        let ev = a
            .insert(line(0, 2), false, true, InsertKind::Demand, 0)
            .expect("eviction");
        // Inserting a Morph line must not evict the last plain line.
        assert_eq!(ev.line, line(0, 0));
        assert!(a.morph_invariant_holds());
    }

    #[test]
    fn invalidate_returns_state() {
        let mut a = tiny(ReplPolicy::Lru);
        a.insert(line(2, 0), true, true, InsertKind::Demand, 0);
        let ev = a.invalidate(line(2, 0)).expect("present");
        assert!(ev.dirty && ev.morph);
        assert_eq!(ev.cause, EvictCause::Invalidation);
        assert!(a.probe(line(2, 0)).is_none());
        assert!(a.invalidate(line(2, 0)).is_none());
    }

    #[test]
    fn prefetched_flag_lifecycle() {
        let mut a = tiny(ReplPolicy::Trrip);
        a.insert(line(1, 0), false, false, InsertKind::Prefetch, 50);
        assert!(a.probe(line(1, 0)).expect("present").prefetched());
        a.touch(line(1, 0));
        assert!(!a.probe(line(1, 0)).expect("present").prefetched());
    }

    #[test]
    fn lines_in_range_walk() {
        let mut a = tiny(ReplPolicy::Lru);
        a.insert(0, false, false, InsertKind::Demand, 0);
        a.insert(64, false, false, InsertKind::Demand, 0);
        a.insert(4096, false, false, InsertKind::Demand, 0);
        let mut got = a.lines_in_range(AddrRange::new(0, 128));
        got.sort_unstable();
        assert_eq!(got, vec![0, 64]);
    }

    #[test]
    fn entry_handles_read_and_write_fields() {
        let mut a = tiny(ReplPolicy::Trrip);
        a.insert(line(0, 0), false, true, InsertKind::Demand, 42);
        {
            let mut e = a.probe_mut(line(0, 0)).expect("present");
            assert!(!e.dirty() && e.morph() && !e.exclusive());
            assert_eq!(e.ready_at(), 42);
            assert_eq!(e.owner(), None);
            e.set_dirty(true);
            e.set_exclusive(true);
            e.set_sharers(0b1010);
            e.set_owner(Some(3));
        }
        let v = a.probe(line(0, 0)).expect("present").get();
        assert!(v.dirty && v.exclusive && v.morph && v.valid);
        assert_eq!(v.sharers, 0b1010);
        assert_eq!(v.owner, Some(3));
        assert_eq!(v.ready_at, 42);
        let mut e = a.probe_mut(line(0, 0)).expect("present");
        e.set_owner(None);
        e.set_dirty(false);
        assert_eq!(e.owner(), None);
        assert!(!e.dirty());
    }

    // Deterministic randomized tests (the in-tree Rng replaces proptest,
    // which the offline build cannot fetch).

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut rng = Rng::new(0x0CC1);
        for _ in 0..64 {
            let mut a = tiny(ReplPolicy::Trrip);
            for _ in 0..200 {
                let addr = rng.below(64) * LINE_BYTES;
                let morph = rng.chance(0.5);
                if a.probe(addr).is_some() {
                    a.touch(addr);
                } else {
                    a.insert(addr, false, morph, InsertKind::Demand, 0);
                }
                assert!(a.occupancy() <= 8);
            }
        }
    }

    #[test]
    fn trrip_morph_invariant() {
        let mut rng = Rng::new(0x7A11);
        for _ in 0..64 {
            let mut a = tiny(ReplPolicy::Trrip);
            for _ in 0..300 {
                let addr = rng.below(32) * LINE_BYTES;
                let morph = rng.chance(0.5);
                let engine = rng.chance(0.5);
                if a.probe(addr).is_none() {
                    let kind = if engine {
                        InsertKind::Engine
                    } else {
                        InsertKind::Demand
                    };
                    a.insert(addr, false, morph, kind, 0);
                } else {
                    a.touch(addr);
                }
                assert!(a.morph_invariant_holds());
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_replacement_state() {
        use tako_sim::checkpoint::{decode, encode};
        let mut rng = Rng::new(0x54A9);
        let mut a = tiny(ReplPolicy::Trrip);
        for _ in 0..150 {
            let addr = rng.below(48) * LINE_BYTES;
            if a.probe(addr).is_some() {
                a.touch(addr);
            } else {
                a.insert(
                    addr,
                    rng.chance(0.3),
                    rng.chance(0.4),
                    InsertKind::Demand,
                    7,
                );
            }
        }
        let snap = encode(&a);
        let mut b = tiny(ReplPolicy::Trrip);
        decode(&snap, &mut b).unwrap();
        assert_eq!(a.tags, b.tags);
        assert_eq!(a.rrpv, b.rrpv);
        assert_eq!(a.lru, b.lru);
        assert_eq!(a.ready, b.ready);
        assert_eq!(a.flags, b.flags);
        assert_eq!(a.sharers, b.sharers);
        assert_eq!(a.owner, b.owner);
        assert_eq!(a.stamp, b.stamp);
        // Future behavior is identical, not just current tags.
        for _ in 0..100 {
            let addr = rng.below(48) * LINE_BYTES;
            if a.probe(addr).is_some() {
                assert_eq!(a.touch(addr), b.touch(addr));
            } else {
                assert_eq!(
                    a.insert(addr, false, false, InsertKind::Demand, 9),
                    b.insert(addr, false, false, InsertKind::Demand, 9)
                );
            }
        }
    }

    #[test]
    fn snapshot_rejects_wrong_geometry() {
        use tako_sim::checkpoint::{decode, encode, SnapError};
        let a = tiny(ReplPolicy::Lru);
        let snap = encode(&a);
        let mut wrong = CacheArray::new(CacheConfig {
            size_bytes: 16 * LINE_BYTES,
            ways: 2,
            tag_latency: 1,
            data_latency: 1,
            repl: ReplPolicy::Lru,
            mshrs: 4,
        });
        match decode(&snap, &mut wrong) {
            Err(SnapError::StateMismatch(msg)) => assert!(msg.contains("geometry")),
            other => panic!("expected geometry mismatch, got {other:?}"),
        }
    }

    #[test]
    fn dirty_state_survives_until_eviction() {
        for k in 0u64..16 {
            let mut a = tiny(ReplPolicy::Lru);
            let addr = k * LINE_BYTES;
            let set = k % 4;
            a.insert(addr, true, false, InsertKind::Demand, 0);
            // Thrash the same set until addr is displaced; its eviction
            // record must still report dirty.
            let mut seen_dirty = false;
            for j in 1..8u64 {
                let other = (set + 4 * (k + j)) * LINE_BYTES;
                if a.probe(other).is_some() {
                    continue;
                }
                if let Some(ev) = a.insert(other, false, false, InsertKind::Demand, 0) {
                    if ev.line == addr {
                        assert!(ev.dirty);
                        seen_dirty = true;
                    }
                }
            }
            if let Some(e) = a.probe(addr) {
                assert!(e.dirty());
            } else {
                assert!(seen_dirty);
            }
        }
    }

    /// The pre-SoA array-of-structs layout, kept verbatim as a reference
    /// model: every operation below mirrors the old `CacheArray` logic
    /// field for field, so the equivalence test can drive both layouts
    /// with the same randomized sequence and demand identical outcomes.
    mod aos_ref {
        use super::super::*;

        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        pub struct AosEntry {
            pub line: Addr,
            pub valid: bool,
            pub dirty: bool,
            pub morph: bool,
            pub rrpv: u8,
            pub lru_stamp: u64,
            pub ready_at: Cycle,
            pub prefetched: bool,
            pub sharers: u64,
            pub owner: Option<u8>,
        }

        impl AosEntry {
            fn invalid() -> Self {
                AosEntry {
                    line: 0,
                    valid: false,
                    dirty: false,
                    morph: false,
                    rrpv: RRPV_MAX,
                    lru_stamp: 0,
                    ready_at: 0,
                    prefetched: false,
                    sharers: 0,
                    owner: None,
                }
            }
        }

        pub struct AosArray {
            repl: ReplPolicy,
            sets: usize,
            ways: usize,
            set_shift: u32,
            entries: Vec<AosEntry>,
            stamp: u64,
        }

        impl AosArray {
            pub fn new(cfg: CacheConfig) -> Self {
                let sets = cfg.sets() as usize;
                let ways = cfg.ways as usize;
                AosArray {
                    repl: cfg.repl,
                    sets,
                    ways,
                    set_shift: LINE_BYTES.trailing_zeros(),
                    entries: vec![AosEntry::invalid(); sets * ways],
                    stamp: 0,
                }
            }

            fn set_of(&self, line: Addr) -> usize {
                ((line >> self.set_shift) % self.sets as u64) as usize
            }

            pub fn probe(&self, line: Addr) -> Option<&AosEntry> {
                let s = self.set_of(line);
                self.entries[s * self.ways..(s + 1) * self.ways]
                    .iter()
                    .find(|e| e.valid && e.line == line)
            }

            pub fn lookup(&mut self, line: Addr) -> Option<&mut AosEntry> {
                self.stamp += 1;
                let stamp = self.stamp;
                let repl = self.repl;
                let s = self.set_of(line);
                let e = self.entries[s * self.ways..(s + 1) * self.ways]
                    .iter_mut()
                    .find(|e| e.valid && e.line == line)?;
                match repl {
                    ReplPolicy::Lru => e.lru_stamp = stamp,
                    ReplPolicy::Rrip | ReplPolicy::Trrip => e.rrpv = 0,
                }
                Some(e)
            }

            pub fn touch(&mut self, line: Addr) -> bool {
                match self.lookup(line) {
                    Some(e) => {
                        e.prefetched = false;
                        true
                    }
                    None => false,
                }
            }

            fn victim(&mut self, set: usize, inserting_morph: bool) -> usize {
                let repl = self.repl;
                let mut invalid = None;
                let mut lru_way = 0usize;
                let mut lru_min = u64::MAX;
                let mut rrpv_way = 0usize;
                let mut rrpv_max = 0u8;
                let mut callback_free = 0usize;
                let mut morph_way = None;
                let mut morph_key = (0u8, 0u64);
                let base = set * self.ways;
                for (w, e) in self.entries[base..base + self.ways].iter().enumerate() {
                    if !e.valid {
                        if invalid.is_none() {
                            invalid = Some(w);
                        }
                        callback_free += 1;
                        continue;
                    }
                    if e.lru_stamp < lru_min {
                        lru_min = e.lru_stamp;
                        lru_way = w;
                    }
                    if e.rrpv > rrpv_max {
                        rrpv_max = e.rrpv;
                        rrpv_way = w;
                    }
                    if !e.morph {
                        callback_free += 1;
                    } else {
                        let key = (e.rrpv, u64::MAX - e.lru_stamp);
                        if morph_way.is_none() || key > morph_key {
                            morph_way = Some(w);
                            morph_key = key;
                        }
                    }
                }
                if repl == ReplPolicy::Trrip && inserting_morph && callback_free <= 1 {
                    if let Some(w) = morph_way {
                        return w;
                    }
                }
                if let Some(w) = invalid {
                    return w;
                }
                match repl {
                    ReplPolicy::Lru => lru_way,
                    ReplPolicy::Rrip | ReplPolicy::Trrip => {
                        let age = RRPV_MAX - rrpv_max;
                        if age > 0 {
                            for e in &mut self.entries[base..base + self.ways] {
                                e.rrpv += age;
                            }
                        }
                        rrpv_way
                    }
                }
            }

            pub fn insert(
                &mut self,
                line: Addr,
                dirty: bool,
                morph: bool,
                kind: InsertKind,
                ready_at: Cycle,
            ) -> Option<EvictEvent> {
                self.stamp += 1;
                let stamp = self.stamp;
                let set = self.set_of(line);
                let way = self.victim(set, morph);
                let repl = self.repl;
                let e = &mut self.entries[set * self.ways + way];
                let evicted = e.valid.then_some(EvictEvent {
                    cause: EvictCause::Capacity,
                    line: e.line,
                    dirty: e.dirty,
                    morph: e.morph,
                    prefetched_unused: e.prefetched,
                    sharers: e.sharers,
                    owner: e.owner,
                });
                let rrpv = match (repl, kind) {
                    (ReplPolicy::Trrip, InsertKind::Engine) => RRPV_MAX,
                    _ => RRPV_LONG,
                };
                *e = AosEntry {
                    line,
                    valid: true,
                    dirty,
                    morph,
                    rrpv,
                    lru_stamp: stamp,
                    ready_at,
                    prefetched: kind == InsertKind::Prefetch,
                    sharers: 0,
                    owner: None,
                };
                evicted
            }

            pub fn invalidate(&mut self, line: Addr) -> Option<EvictEvent> {
                let s = self.set_of(line);
                let e = self.entries[s * self.ways..(s + 1) * self.ways]
                    .iter_mut()
                    .find(|e| e.valid && e.line == line)?;
                let ev = EvictEvent {
                    cause: EvictCause::Invalidation,
                    line: e.line,
                    dirty: e.dirty,
                    morph: e.morph,
                    prefetched_unused: e.prefetched,
                    sharers: e.sharers,
                    owner: e.owner,
                };
                *e = AosEntry::invalid();
                Some(ev)
            }

            pub fn occupancy(&self) -> usize {
                self.entries.iter().filter(|e| e.valid).count()
            }
        }
    }

    /// Behavior identity: the SoA layout replays a long randomized mix of
    /// probes, promoting lookups, inserts (all three kinds, all three
    /// policies, morph and plain), and invalidates bit-for-bit like the
    /// old array-of-structs layout — same hits, same victims, same
    /// eviction records, same occupancy and replacement-state evolution.
    #[test]
    fn soa_matches_aos_reference_on_random_sequences() {
        for (seed, repl) in [
            (0x5071u64, ReplPolicy::Lru),
            (0x5072, ReplPolicy::Rrip),
            (0x5073, ReplPolicy::Trrip),
            (0x5074, ReplPolicy::Trrip),
        ] {
            let mut rng = Rng::new(seed);
            let cfg = CacheConfig {
                size_bytes: 16 * LINE_BYTES, // 8 sets x 2 ways
                ways: 2,
                tag_latency: 1,
                data_latency: 1,
                repl,
                mshrs: 4,
            };
            let mut soa = CacheArray::new(cfg);
            let mut aos = aos_ref::AosArray::new(cfg);
            for step in 0..4000u64 {
                let addr = rng.below(96) * LINE_BYTES;
                match rng.below(10) {
                    0 => {
                        let ev_s = soa.invalidate(addr);
                        let ev_a = aos.invalidate(addr);
                        assert_eq!(ev_s, ev_a, "invalidate diverged at step {step}");
                    }
                    1..=3 => {
                        let hit_s = soa.touch(addr);
                        let hit_a = aos.touch(addr);
                        assert_eq!(hit_s, hit_a, "touch diverged at step {step}");
                    }
                    _ => {
                        let present_s = soa.probe(addr).is_some();
                        assert_eq!(present_s, aos.probe(addr).is_some());
                        if present_s {
                            // Promoting hit that also flips payload bits.
                            let mut e = soa.lookup(addr).expect("present");
                            let dirty = rng.chance(0.5);
                            e.set_dirty(dirty);
                            let ea = aos.lookup(addr).expect("present");
                            ea.dirty = dirty;
                        } else {
                            let dirty = rng.chance(0.3);
                            let morph = rng.chance(0.3);
                            let kind = match rng.below(3) {
                                0 => InsertKind::Demand,
                                1 => InsertKind::Prefetch,
                                _ => InsertKind::Engine,
                            };
                            let ev_s = soa.insert(addr, dirty, morph, kind, step);
                            let ev_a = aos.insert(addr, dirty, morph, kind, step);
                            assert_eq!(ev_s, ev_a, "insert diverged at step {step}");
                        }
                    }
                }
                assert_eq!(soa.occupancy(), aos.occupancy());
                // Spot-check assembled per-way state on a random probe.
                let spot = rng.below(96) * LINE_BYTES;
                match (soa.probe(spot), aos.probe(spot)) {
                    (Some(s), Some(a)) => {
                        assert_eq!(s.line(), a.line);
                        assert_eq!(s.dirty(), a.dirty);
                        assert_eq!(s.morph(), a.morph);
                        assert_eq!(s.prefetched(), a.prefetched);
                        assert_eq!(s.ready_at(), a.ready_at);
                        let v = s.get();
                        assert_eq!((v.rrpv, v.lru_stamp), (a.rrpv, a.lru_stamp));
                    }
                    (None, None) => {}
                    (s, a) => panic!("presence diverged: soa={} aos={}", s.is_some(), a.is_some()),
                }
            }
        }
    }
}
