//! Set-associative tag arrays with LRU / SRRIP / trrîp replacement.
//!
//! The arrays track timing-relevant state only; data lives in the backing
//! store (`tako_mem::PhysMem`). Each entry carries:
//!
//! * `dirty` — needs a writeback on eviction,
//! * `morph` — a Morph is registered for this line at this level, so
//!   evicting it triggers a callback (set from the GET request's
//!   registration bits, Sec 5.2),
//! * `ready_at` — the cycle the fill (or the callback locking the line)
//!   completes; accesses before this cycle stall until it,
//! * `prefetched` — inserted by the prefetcher and not yet demanded,
//! * `sharers` / `owner` — directory state, used only in LLC banks.
//!
//! ## trrîp
//!
//! trrîp is SRRIP \[62\] with two täkō-specific changes (Sec 5.2):
//! engine-issued fills insert at the most distant RRPV so callback traffic
//! does not pollute the cache, and victim selection preserves the
//! invariant that **every set retains at least one line whose eviction
//! triggers no callback** — otherwise a full callback buffer could
//! deadlock the cache. [`CacheArray::insert`] upholds the invariant and a
//! property test exercises it.

use tako_mem::addr::{Addr, AddrRange};
use tako_sim::config::{CacheConfig, ReplPolicy, LINE_BYTES};
use tako_sim::Cycle;

/// Maximum (most distant) re-reference prediction value for 2-bit RRIP.
const RRPV_MAX: u8 = 3;
/// Insertion RRPV for demand fills under (t)rrîp.
const RRPV_LONG: u8 = 2;

/// Who is inserting a line — determines insertion priority under trrîp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertKind {
    /// Demand fill from a core-side access.
    Demand,
    /// Fill issued by the L2 stride prefetcher.
    Prefetch,
    /// Fill issued by a täkō engine executing a callback (inserted at
    /// distant priority by trrîp to avoid pollution, Sec 5.2).
    Engine,
}

/// One tag entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagEntry {
    /// Line-aligned address.
    pub line: Addr,
    /// Entry holds a valid line.
    pub valid: bool,
    /// Line differs from the next level / backing store.
    pub dirty: bool,
    /// A Morph is registered for this line at this cache level.
    pub morph: bool,
    /// Re-reference prediction value (RRIP policies).
    pub rrpv: u8,
    /// Last-touch stamp (LRU policy).
    pub lru_stamp: u64,
    /// Cycle at which the line's fill or locking callback completes.
    pub ready_at: Cycle,
    /// Inserted by the prefetcher and not yet demanded.
    pub prefetched: bool,
    /// Private caches: this tile holds the only copy (silent write hits).
    pub exclusive: bool,
    /// Directory: bitmask of tiles holding the line (LLC banks only).
    pub sharers: u64,
    /// Directory: tile holding the line modified, if any (LLC banks only).
    pub owner: Option<u8>,
}

impl TagEntry {
    fn invalid() -> Self {
        TagEntry {
            line: 0,
            valid: false,
            dirty: false,
            morph: false,
            rrpv: RRPV_MAX,
            lru_stamp: 0,
            ready_at: 0,
            prefetched: false,
            exclusive: false,
            sharers: 0,
            owner: None,
        }
    }
}

/// Why a line left the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictCause {
    /// Displaced by an insert (the replacement policy chose it).
    Capacity,
    /// Explicitly removed ([`CacheArray::invalidate`]): coherence
    /// shoot-down, inclusion back-invalidate, flushData, or a Morph
    /// (un)registration range flush.
    Invalidation,
}

/// What fell out of the array on an insert or invalidate, and why.
///
/// The transaction pipeline routes these to the eviction stages
/// (`handle_l2_evict` / `handle_llc_evict` in `tako-core`), which decide
/// between discard, writeback, and Morph callbacks from this state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictEvent {
    /// Why the line left the array.
    pub cause: EvictCause,
    /// Line-aligned address of the victim.
    pub line: Addr,
    /// The victim was dirty (needs a writeback / onWriteback).
    pub dirty: bool,
    /// The victim had a Morph registered (needs a callback).
    pub morph: bool,
    /// The victim was prefetched and never demanded (wasted prefetch).
    pub prefetched_unused: bool,
    /// Directory state carried out of LLC banks: tiles holding copies.
    pub sharers: u64,
    /// Directory state carried out of LLC banks: modified owner.
    pub owner: Option<u8>,
}

/// A set-associative cache tag array.
#[derive(Debug, Clone)]
pub struct CacheArray {
    cfg: CacheConfig,
    sets: usize,
    ways: usize,
    /// Precomputed right-shift from an address to its set-index bits:
    /// the line-offset bits plus any bank-select bits (`index_shift`).
    set_shift: u32,
    /// `sets - 1` when `sets` is a power of two (the common geometry);
    /// set selection is then a single mask instead of a modulo.
    set_mask: u64,
    pow2_sets: bool,
    entries: Vec<TagEntry>,
    stamp: u64,
}

impl CacheArray {
    /// An empty array with `cfg`'s geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        Self::with_index_shift(cfg, 0)
    }

    /// An empty array whose set index skips the low `index_shift` bits of
    /// the line number. Banked caches (the LLC) select the bank from
    /// those bits, so the bank's own index must not reuse them —
    /// otherwise only `sets >> index_shift` sets are ever addressed.
    pub fn with_index_shift(cfg: CacheConfig, index_shift: u32) -> Self {
        let sets = cfg.sets() as usize;
        let ways = cfg.ways as usize;
        CacheArray {
            cfg,
            sets,
            ways,
            set_shift: LINE_BYTES.trailing_zeros() + index_shift,
            set_mask: sets as u64 - 1,
            pow2_sets: sets.is_power_of_two(),
            entries: vec![TagEntry::invalid(); sets * ways],
            stamp: 0,
        }
    }

    /// The geometry/timing configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline(always)]
    fn set_of(&self, line: Addr) -> usize {
        let idx = line >> self.set_shift;
        if self.pow2_sets {
            (idx & self.set_mask) as usize
        } else {
            (idx % self.sets as u64) as usize
        }
    }

    #[inline]
    fn set_slice(&self, set: usize) -> &[TagEntry] {
        &self.entries[set * self.ways..(set + 1) * self.ways]
    }

    #[inline]
    fn set_slice_mut(&mut self, set: usize) -> &mut [TagEntry] {
        &mut self.entries[set * self.ways..(set + 1) * self.ways]
    }

    /// Find `line` in the array.
    #[inline]
    pub fn probe(&self, line: Addr) -> Option<&TagEntry> {
        let set = self.set_of(line);
        self.set_slice(set)
            .iter()
            .find(|e| e.valid && e.line == line)
    }

    /// Find `line` in the array, mutably.
    #[inline]
    pub fn probe_mut(&mut self, line: Addr) -> Option<&mut TagEntry> {
        let set = self.set_of(line);
        self.set_slice_mut(set)
            .iter_mut()
            .find(|e| e.valid && e.line == line)
    }

    /// The per-access hit path: find `line` and, if present, promote it
    /// per the replacement policy in the same walk, returning the
    /// promoted entry so callers can read/update state bits (dirty,
    /// sharers, prefetched) without a second tag walk. Performs no heap
    /// allocation. Callers that consume the prefetched flag clear it via
    /// the returned entry; [`CacheArray::touch`] does both.
    #[inline]
    pub fn lookup(&mut self, line: Addr) -> Option<&mut TagEntry> {
        self.stamp += 1;
        let stamp = self.stamp;
        let repl = self.cfg.repl;
        let set = self.set_of(line);
        let e = self
            .set_slice_mut(set)
            .iter_mut()
            .find(|e| e.valid && e.line == line)?;
        match repl {
            ReplPolicy::Lru => e.lru_stamp = stamp,
            ReplPolicy::Rrip | ReplPolicy::Trrip => e.rrpv = 0,
        }
        Some(e)
    }

    /// Record a hit on `line`: promote it per the replacement policy and
    /// clear its prefetched flag. Returns false if the line is absent.
    #[inline]
    pub fn touch(&mut self, line: Addr) -> bool {
        match self.lookup(line) {
            Some(e) => {
                e.prefetched = false;
                true
            }
            None => false,
        }
    }

    /// Choose a victim way in `set` for inserting a line with
    /// `inserting_morph`. Prefers invalid ways; otherwise follows the
    /// replacement policy; under trrîp, refuses to evict the set's last
    /// callback-free line when the incoming line has a Morph.
    ///
    /// Runs as a single pass over the set that gathers every candidate
    /// the policies need (first invalid way, LRU way, first max-RRPV
    /// way, callback-free population, most-distant Morph line); only
    /// RRIP aging revisits the set, and at most once.
    fn victim(&mut self, set: usize, inserting_morph: bool) -> usize {
        let repl = self.cfg.repl;
        let mut invalid = None;
        let mut lru_way = 0usize;
        let mut lru_min = u64::MAX;
        let mut rrpv_way = 0usize;
        let mut rrpv_max = 0u8;
        let mut callback_free = 0usize;
        let mut morph_way = None;
        let mut morph_key = (0u8, 0u64);
        for (w, e) in self.set_slice(set).iter().enumerate() {
            if !e.valid {
                if invalid.is_none() {
                    invalid = Some(w);
                }
                callback_free += 1;
                continue;
            }
            if e.lru_stamp < lru_min {
                lru_min = e.lru_stamp;
                lru_way = w;
            }
            if e.rrpv > rrpv_max {
                rrpv_max = e.rrpv;
                rrpv_way = w;
            }
            if !e.morph {
                callback_free += 1;
            } else {
                let key = (e.rrpv, u64::MAX - e.lru_stamp);
                if morph_way.is_none() || key > morph_key {
                    morph_way = Some(w);
                    morph_key = key;
                }
            }
        }
        // trrîp deadlock avoidance (Sec 5.2): a Morph line may never
        // consume the set's last callback-free way (invalid or plain).
        if repl == ReplPolicy::Trrip && inserting_morph && callback_free <= 1 {
            if let Some(w) = morph_way {
                return w;
            }
        }
        if let Some(w) = invalid {
            return w;
        }
        match repl {
            ReplPolicy::Lru => lru_way,
            ReplPolicy::Rrip | ReplPolicy::Trrip => {
                // SRRIP aging, batched: instead of repeated +1 sweeps
                // until some line reaches RRPV_MAX, add the deficit once.
                let age = RRPV_MAX - rrpv_max;
                if age > 0 {
                    for e in self.set_slice_mut(set) {
                        e.rrpv += age;
                    }
                }
                rrpv_way
            }
        }
    }

    /// Insert `line`, returning the evicted line if a valid one was
    /// displaced. `ready_at` is when the fill (or the callback holding the
    /// line locked) completes.
    #[inline]
    pub fn insert(
        &mut self,
        line: Addr,
        dirty: bool,
        morph: bool,
        kind: InsertKind,
        ready_at: Cycle,
    ) -> Option<EvictEvent> {
        debug_assert_eq!(line % LINE_BYTES, 0, "insert of unaligned line");
        debug_assert!(self.probe(line).is_none(), "insert of already-present line");
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(line);
        let way = self.victim(set, morph);
        let repl = self.cfg.repl;
        let e = &mut self.set_slice_mut(set)[way];
        let evicted = e.valid.then_some(EvictEvent {
            cause: EvictCause::Capacity,
            line: e.line,
            dirty: e.dirty,
            morph: e.morph,
            prefetched_unused: e.prefetched,
            sharers: e.sharers,
            owner: e.owner,
        });
        let rrpv = match (repl, kind) {
            (ReplPolicy::Trrip, InsertKind::Engine) => RRPV_MAX,
            _ => RRPV_LONG,
        };
        *e = TagEntry {
            line,
            valid: true,
            dirty,
            morph,
            rrpv,
            lru_stamp: stamp,
            ready_at,
            prefetched: kind == InsertKind::Prefetch,
            exclusive: false,
            sharers: 0,
            owner: None,
        };
        evicted
    }

    /// Remove `line` if present, returning its eviction record.
    #[inline]
    pub fn invalidate(&mut self, line: Addr) -> Option<EvictEvent> {
        let set = self.set_of(line);
        let e = self
            .set_slice_mut(set)
            .iter_mut()
            .find(|e| e.valid && e.line == line)?;
        let ev = EvictEvent {
            cause: EvictCause::Invalidation,
            line: e.line,
            dirty: e.dirty,
            morph: e.morph,
            prefetched_unused: e.prefetched,
            sharers: e.sharers,
            owner: e.owner,
        };
        *e = TagEntry::invalid();
        Some(ev)
    }

    /// All valid lines whose address falls in `range` (used by flushData's
    /// tag-array walk, Sec 4.4).
    pub fn lines_in_range(&self, range: AddrRange) -> Vec<Addr> {
        self.entries
            .iter()
            .filter(|e| e.valid && range.contains(e.line))
            .map(|e| e.line)
            .collect()
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Check the trrîp deadlock-avoidance invariant: no set consists
    /// entirely of Morph-registered valid lines. (Vacuously true for sets
    /// with an invalid way.)
    pub fn morph_invariant_holds(&self) -> bool {
        (0..self.sets).all(|s| self.set_slice(s).iter().any(|e| !e.valid || !e.morph))
    }

    /// Iterate over all valid entries.
    pub fn iter(&self) -> impl Iterator<Item = &TagEntry> {
        self.entries.iter().filter(|e| e.valid)
    }
}

impl tako_sim::checkpoint::Snapshot for CacheArray {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("array");
        // Geometry is config-derived, not restored; it is written so load
        // can verify the snapshot matches the rebuilt array.
        w.put_u64(self.sets as u64);
        w.put_u64(self.ways as u64);
        w.put_u64(self.stamp);
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.line);
            w.put_bool(e.valid);
            w.put_bool(e.dirty);
            w.put_bool(e.morph);
            w.put_u8(e.rrpv);
            w.put_u64(e.lru_stamp);
            w.put_u64(e.ready_at);
            w.put_bool(e.prefetched);
            w.put_bool(e.exclusive);
            w.put_u64(e.sharers);
            w.put_bool(e.owner.is_some());
            w.put_u8(e.owner.unwrap_or(0));
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        use tako_sim::checkpoint::SnapError;
        r.section("array")?;
        let sets = r.get_u64()?;
        let ways = r.get_u64()?;
        if sets != self.sets as u64 || ways != self.ways as u64 {
            return Err(SnapError::StateMismatch(format!(
                "cache array geometry: snapshot {sets}x{ways}, rebuilt {}x{}",
                self.sets, self.ways
            )));
        }
        self.stamp = r.get_u64()?;
        r.get_len_expect("cache array entries", self.entries.len())?;
        for e in &mut self.entries {
            e.line = r.get_u64()?;
            e.valid = r.get_bool()?;
            e.dirty = r.get_bool()?;
            e.morph = r.get_bool()?;
            e.rrpv = r.get_u8()?;
            e.lru_stamp = r.get_u64()?;
            e.ready_at = r.get_u64()?;
            e.prefetched = r.get_bool()?;
            e.exclusive = r.get_bool()?;
            e.sharers = r.get_u64()?;
            let has_owner = r.get_bool()?;
            let owner = r.get_u8()?;
            e.owner = has_owner.then_some(owner);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::rng::Rng;

    fn tiny(repl: ReplPolicy) -> CacheArray {
        // 4 sets x 2 ways.
        CacheArray::new(CacheConfig {
            size_bytes: 8 * LINE_BYTES,
            ways: 2,
            tag_latency: 1,
            data_latency: 1,
            repl,
            mshrs: 4,
        })
    }

    fn line(set: u64, k: u64) -> Addr {
        (set + 4 * k) * LINE_BYTES
    }

    #[test]
    fn insert_probe_touch() {
        let mut a = tiny(ReplPolicy::Lru);
        assert!(a
            .insert(line(0, 0), false, false, InsertKind::Demand, 0)
            .is_none());
        assert!(a.probe(line(0, 0)).is_some());
        assert!(a.touch(line(0, 0)));
        assert!(!a.touch(line(1, 0)));
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut a = tiny(ReplPolicy::Lru);
        a.insert(line(0, 0), false, false, InsertKind::Demand, 0);
        a.insert(line(0, 1), true, false, InsertKind::Demand, 0);
        a.touch(line(0, 0)); // 0 is now MRU
        let ev = a
            .insert(line(0, 2), false, false, InsertKind::Demand, 0)
            .expect("eviction");
        assert_eq!(ev.line, line(0, 1));
        assert!(ev.dirty);
        assert_eq!(ev.cause, EvictCause::Capacity);
    }

    #[test]
    fn rrip_promotes_on_hit() {
        let mut a = tiny(ReplPolicy::Rrip);
        a.insert(line(0, 0), false, false, InsertKind::Demand, 0);
        a.insert(line(0, 1), false, false, InsertKind::Demand, 0);
        a.touch(line(0, 0)); // rrpv -> 0
        let ev = a
            .insert(line(0, 2), false, false, InsertKind::Demand, 0)
            .expect("eviction");
        assert_eq!(ev.line, line(0, 1));
    }

    #[test]
    fn trrip_engine_fills_evict_first() {
        let mut a = tiny(ReplPolicy::Trrip);
        a.insert(line(0, 0), false, false, InsertKind::Demand, 0);
        a.insert(line(0, 1), false, false, InsertKind::Engine, 0);
        // Engine fill sits at distant RRPV: it is the next victim even
        // though it was inserted more recently.
        let ev = a
            .insert(line(0, 2), false, false, InsertKind::Demand, 0)
            .expect("eviction");
        assert_eq!(ev.line, line(0, 1));
    }

    #[test]
    fn trrip_preserves_callback_free_line() {
        let mut a = tiny(ReplPolicy::Trrip);
        a.insert(line(0, 0), false, true, InsertKind::Demand, 0);
        a.insert(line(0, 1), false, false, InsertKind::Demand, 0);
        a.touch(line(0, 1)); // plain line is MRU; naive policy would evict 0...
        a.touch(line(0, 0)); // now morph line is MRU; victim would be plain line 1
        let ev = a
            .insert(line(0, 2), false, true, InsertKind::Demand, 0)
            .expect("eviction");
        // Inserting a Morph line must not evict the last plain line.
        assert_eq!(ev.line, line(0, 0));
        assert!(a.morph_invariant_holds());
    }

    #[test]
    fn invalidate_returns_state() {
        let mut a = tiny(ReplPolicy::Lru);
        a.insert(line(2, 0), true, true, InsertKind::Demand, 0);
        let ev = a.invalidate(line(2, 0)).expect("present");
        assert!(ev.dirty && ev.morph);
        assert_eq!(ev.cause, EvictCause::Invalidation);
        assert!(a.probe(line(2, 0)).is_none());
        assert!(a.invalidate(line(2, 0)).is_none());
    }

    #[test]
    fn prefetched_flag_lifecycle() {
        let mut a = tiny(ReplPolicy::Trrip);
        a.insert(line(1, 0), false, false, InsertKind::Prefetch, 50);
        assert!(a.probe(line(1, 0)).expect("present").prefetched);
        a.touch(line(1, 0));
        assert!(!a.probe(line(1, 0)).expect("present").prefetched);
    }

    #[test]
    fn lines_in_range_walk() {
        let mut a = tiny(ReplPolicy::Lru);
        a.insert(0, false, false, InsertKind::Demand, 0);
        a.insert(64, false, false, InsertKind::Demand, 0);
        a.insert(4096, false, false, InsertKind::Demand, 0);
        let mut got = a.lines_in_range(AddrRange::new(0, 128));
        got.sort_unstable();
        assert_eq!(got, vec![0, 64]);
    }

    // Deterministic randomized tests (the in-tree Rng replaces proptest,
    // which the offline build cannot fetch).

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut rng = Rng::new(0x0CC1);
        for _ in 0..64 {
            let mut a = tiny(ReplPolicy::Trrip);
            for _ in 0..200 {
                let addr = rng.below(64) * LINE_BYTES;
                let morph = rng.chance(0.5);
                if a.probe(addr).is_some() {
                    a.touch(addr);
                } else {
                    a.insert(addr, false, morph, InsertKind::Demand, 0);
                }
                assert!(a.occupancy() <= 8);
            }
        }
    }

    #[test]
    fn trrip_morph_invariant() {
        let mut rng = Rng::new(0x7A11);
        for _ in 0..64 {
            let mut a = tiny(ReplPolicy::Trrip);
            for _ in 0..300 {
                let addr = rng.below(32) * LINE_BYTES;
                let morph = rng.chance(0.5);
                let engine = rng.chance(0.5);
                if a.probe(addr).is_none() {
                    let kind = if engine {
                        InsertKind::Engine
                    } else {
                        InsertKind::Demand
                    };
                    a.insert(addr, false, morph, kind, 0);
                } else {
                    a.touch(addr);
                }
                assert!(a.morph_invariant_holds());
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_replacement_state() {
        use tako_sim::checkpoint::{decode, encode};
        let mut rng = Rng::new(0x54A9);
        let mut a = tiny(ReplPolicy::Trrip);
        for _ in 0..150 {
            let addr = rng.below(48) * LINE_BYTES;
            if a.probe(addr).is_some() {
                a.touch(addr);
            } else {
                a.insert(
                    addr,
                    rng.chance(0.3),
                    rng.chance(0.4),
                    InsertKind::Demand,
                    7,
                );
            }
        }
        let snap = encode(&a);
        let mut b = tiny(ReplPolicy::Trrip);
        decode(&snap, &mut b).unwrap();
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.stamp, b.stamp);
        // Future behavior is identical, not just current tags.
        for _ in 0..100 {
            let addr = rng.below(48) * LINE_BYTES;
            if a.probe(addr).is_some() {
                assert_eq!(a.touch(addr), b.touch(addr));
            } else {
                assert_eq!(
                    a.insert(addr, false, false, InsertKind::Demand, 9),
                    b.insert(addr, false, false, InsertKind::Demand, 9)
                );
            }
        }
    }

    #[test]
    fn snapshot_rejects_wrong_geometry() {
        use tako_sim::checkpoint::{decode, encode, SnapError};
        let a = tiny(ReplPolicy::Lru);
        let snap = encode(&a);
        let mut wrong = CacheArray::new(CacheConfig {
            size_bytes: 16 * LINE_BYTES,
            ways: 2,
            tag_latency: 1,
            data_latency: 1,
            repl: ReplPolicy::Lru,
            mshrs: 4,
        });
        match decode(&snap, &mut wrong) {
            Err(SnapError::StateMismatch(msg)) => assert!(msg.contains("geometry")),
            other => panic!("expected geometry mismatch, got {other:?}"),
        }
    }

    #[test]
    fn dirty_state_survives_until_eviction() {
        for k in 0u64..16 {
            let mut a = tiny(ReplPolicy::Lru);
            let addr = k * LINE_BYTES;
            let set = k % 4;
            a.insert(addr, true, false, InsertKind::Demand, 0);
            // Thrash the same set until addr is displaced; its eviction
            // record must still report dirty.
            let mut seen_dirty = false;
            for j in 1..8u64 {
                let other = (set + 4 * (k + j)) * LINE_BYTES;
                if a.probe(other).is_some() {
                    continue;
                }
                if let Some(ev) = a.insert(other, false, false, InsertKind::Demand, 0) {
                    if ev.line == addr {
                        assert!(ev.dirty);
                        seen_dirty = true;
                    }
                }
            }
            if let Some(e) = a.probe(addr) {
                assert!(e.dirty);
            } else {
                assert!(seen_dirty);
            }
        }
    }
}
