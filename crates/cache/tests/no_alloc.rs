//! Micro-benchmark guard: the per-access tag-array hot path must not
//! allocate. A counting global allocator wraps the system allocator;
//! each assertion exercises an entry point on a pre-built array and
//! checks the allocation count did not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tako_cache::{CacheArray, InsertKind, StridePrefetcher};
use tako_sim::config::{CacheConfig, PrefetchConfig, ReplPolicy, LINE_BYTES};

struct CountingAlloc;

// Per-thread so concurrently running tests don't see each other's
// allocations. Const-initialized: reading it never allocates.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(
        &self,
        ptr: *mut u8,
        layout: Layout,
        new_size: usize,
    ) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` and return how many heap allocations this thread performed.
fn allocs_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

fn array(repl: ReplPolicy) -> CacheArray {
    CacheArray::new(CacheConfig {
        size_bytes: 64 * 1024,
        ways: 8,
        tag_latency: 2,
        data_latency: 3,
        repl,
        mshrs: 8,
    })
}

#[test]
fn hot_path_is_allocation_free() {
    for repl in [ReplPolicy::Lru, ReplPolicy::Rrip, ReplPolicy::Trrip] {
        let mut a = array(repl);
        // Warm the array past capacity so inserts evict.
        for k in 0..2048u64 {
            let line = k * LINE_BYTES;
            if a.probe(line).is_none() {
                a.insert(line, k % 3 == 0, k % 5 == 0, InsertKind::Demand, 0);
            }
        }
        let n = allocs_in(|| {
            for k in 0..4096u64 {
                let line = (k % 3072) * LINE_BYTES;
                if a.lookup(line).is_none() {
                    a.insert(
                        line,
                        k % 2 == 0,
                        k % 7 == 0,
                        InsertKind::Demand,
                        k,
                    );
                }
                a.probe(line);
                a.probe_mut(line);
                a.touch(line);
            }
            a.invalidate(123 * LINE_BYTES);
        });
        assert_eq!(n, 0, "hot path allocated under {repl:?}");
    }
}

#[test]
fn prefetcher_observe_is_allocation_free() {
    let mut p = StridePrefetcher::new(PrefetchConfig::default());
    // Train every region the loop below revisits (stream-table churn in
    // the steady state reuses existing slots).
    for k in 0..64u64 {
        p.observe(k * LINE_BYTES);
    }
    let n = allocs_in(|| {
        for k in 64..4096u64 {
            let batch = p.observe(k * LINE_BYTES);
            assert!(batch.len() <= 8);
        }
    });
    assert_eq!(n, 0, "StridePrefetcher::observe allocated");
}
