//! Micro-benchmark guard: the per-access tag-array hot path must not
//! allocate. A counting global allocator wraps the system allocator;
//! each assertion exercises an entry point on a pre-built array and
//! checks the allocation count did not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tako_cache::{CacheArray, InsertKind, StridePrefetcher};
use tako_sim::config::{CacheConfig, PrefetchConfig, ReplPolicy, LINE_BYTES};

struct CountingAlloc;

// Per-thread so concurrently running tests don't see each other's
// allocations. Const-initialized: reading it never allocates.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` and return how many heap allocations this thread performed.
fn allocs_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

fn array(repl: ReplPolicy) -> CacheArray {
    CacheArray::new(CacheConfig {
        size_bytes: 64 * 1024,
        ways: 8,
        tag_latency: 2,
        data_latency: 3,
        repl,
        mshrs: 8,
    })
}

#[test]
fn hot_path_is_allocation_free() {
    for repl in [ReplPolicy::Lru, ReplPolicy::Rrip, ReplPolicy::Trrip] {
        let mut a = array(repl);
        // Warm the array past capacity so inserts evict.
        for k in 0..2048u64 {
            let line = k * LINE_BYTES;
            if a.probe(line).is_none() {
                a.insert(line, k % 3 == 0, k % 5 == 0, InsertKind::Demand, 0);
            }
        }
        let n = allocs_in(|| {
            for k in 0..4096u64 {
                let line = (k % 3072) * LINE_BYTES;
                if a.lookup(line).is_none() {
                    a.insert(line, k % 2 == 0, k % 7 == 0, InsertKind::Demand, k);
                }
                a.probe(line);
                a.probe_mut(line);
                a.touch(line);
            }
            a.invalidate(123 * LINE_BYTES);
        });
        assert_eq!(n, 0, "hot path allocated under {repl:?}");
    }
}

/// The staged-pipeline vocabulary on top of the arrays — building a
/// [`MemTxn`], serving it through [`CachePort`]/[`DramEdge`], and
/// emitting accounting on the [`AccountingBus`] — must be as
/// allocation-free as the raw tag walks it wraps.
#[test]
fn txn_pipeline_hot_path_is_allocation_free() {
    use tako_core::hierarchy::{CachePort, DramEdge, LevelPort, MemTxn};
    use tako_mem::dram::Dram;
    use tako_sim::config::SystemConfig;
    use tako_sim::event::{AccountingBus, LevelId, TxnEvent, TxnSink};
    use tako_sim::fault::{FaultInjector, FaultKind};

    let cfg = SystemConfig::default_16core();
    let mut a = array(ReplPolicy::Trrip);
    let mut dram = Dram::new(cfg.mem);
    let mut bus = AccountingBus::new(FaultInjector::new(None));
    // Warm the array past capacity so lookups hit both outcomes.
    for k in 0..2048u64 {
        let line = k * LINE_BYTES;
        if a.probe(line).is_none() {
            a.insert(line, k % 3 == 0, false, InsertKind::Demand, 0);
        }
    }
    let n = allocs_in(|| {
        for k in 0..4096u64 {
            let line = (k % 3072) * LINE_BYTES;
            let mut txn = MemTxn::prefetch(0, line, k);
            txn.stamps.l2 = Some(k);
            let mut port = CachePort::new(&mut a, LevelId::Llc);
            if port.lookup_counted(line, &mut bus).is_none() {
                txn.stamps.fill = DramEdge::new(&mut dram).serve(line, k, &mut bus);
                a.insert(line, txn.is_write(), false, txn.fill_kind, k);
            }
            let t1 = txn.stamps.fill.or(txn.stamps.l2).unwrap_or(k);
            let mut port = CachePort::new(&mut a, LevelId::Llc);
            port.serve(line, t1, &mut bus);
            let done = txn.retire(t1);
            bus.emit(TxnEvent::Hit(LevelId::L1d));
            bus.emit(TxnEvent::CoherenceInval);
            bus.emit(TxnEvent::NocHops { flits: 9, hops: 2 });
            bus.emit(TxnEvent::EngineWork {
                instrs: 3,
                mem_ops: 1,
            });
            bus.poll_fault(done, FaultKind::DelayedDram);
        }
    });
    assert_eq!(n, 0, "MemTxn/TxnSink pipeline hot path allocated");
    assert!(bus.stats.get(tako_sim::stats::Counter::DramRead) > 0);
}

/// Checkpoint cadence armed but not firing must cost nothing on the
/// access hot path: the epoch sweep only flips a pre-existing flag, so
/// a full-system access loop allocates exactly as much with
/// `cfg.checkpoint` armed as without it.
#[test]
fn checkpoint_cadence_armed_but_idle_is_allocation_free() {
    use tako_core::TakoSystem;
    use tako_sim::config::{CheckpointConfig, SystemConfig};

    let run = |checkpoint: Option<CheckpointConfig>| -> u64 {
        let mut cfg = SystemConfig::default_16core();
        cfg.watchdog.enabled = true;
        cfg.watchdog.epoch_cycles = 1_000; // the measured loop crosses many epochs
        cfg.checkpoint = checkpoint;
        let mut sys = TakoSystem::new(cfg);
        let _ = sys.alloc_real(1 << 18);
        let mut t = 0u64;
        // Warm-up: reach cache/MSHR steady state before counting.
        for k in 0..2048u64 {
            let (_, done) = sys.debug_read_u64((k % 16) as usize, 0x1000_0000 + (k % 1024) * 64, t);
            t = done;
        }
        allocs_in(|| {
            for k in 0..4096u64 {
                let (_, done) =
                    sys.debug_read_u64((k % 16) as usize, 0x1000_0000 + (k % 1024) * 64, t);
                t = done;
                let _ = sys.take_checkpoint_due();
            }
        })
    };
    let baseline = run(None);
    let armed = run(Some(CheckpointConfig { every_epochs: 2 }));
    assert_eq!(
        armed, baseline,
        "arming the checkpoint cadence changed hot-path allocations \
         (baseline {baseline}, armed {armed})"
    );
}

/// With tracing disarmed (the default), the observability layer's bus
/// hooks — the cursor update, the span recorder, the event tap — must
/// all reduce to one `SinkTap::None` discriminant test and allocate
/// nothing.
#[test]
fn tracing_off_hot_path_is_allocation_free() {
    use tako_sim::event::{AccountingBus, LevelId, TxnEvent, TxnSink};
    use tako_sim::fault::FaultInjector;
    use tako_sim::trace::Stage;

    let mut bus = AccountingBus::new(FaultInjector::new(None));
    assert!(bus.observer().is_none(), "tap must default to None");
    let n = allocs_in(|| {
        for k in 0..4096u64 {
            bus.observe_at(k, (k % 16) as usize);
            bus.emit(TxnEvent::Hit(LevelId::L1d));
            bus.emit(TxnEvent::Miss(LevelId::L2));
            bus.emit(TxnEvent::NocHops { flits: 5, hops: 2 });
            let done = tako_sim::span!(bus, Stage::Callback, k, k + 40);
            bus.span_record(Stage::L1, k, done);
        }
    });
    assert_eq!(n, 0, "tracing-off observability hooks allocated");
}

/// With an observer attached, recording must still be allocation-free:
/// every structure (trace ring, sample ring, histograms, profile)
/// preallocates at construction, and each record is a slot write.
#[test]
fn armed_observer_recording_is_allocation_free() {
    use tako_sim::event::{AccountingBus, LevelId, SinkTap, TxnEvent, TxnSink};
    use tako_sim::fault::FaultInjector;
    use tako_sim::stats::Counter;
    use tako_sim::trace::{Observer, Stage};

    let mut bus = AccountingBus::new(FaultInjector::new(None));
    bus.tap = SinkTap::Observer(Box::new(Observer::new()));
    let mut stats = tako_sim::stats::Stats::new();
    let n = allocs_in(|| {
        for k in 0..4096u64 {
            bus.observe_at(k, (k % 16) as usize);
            bus.emit(TxnEvent::Hit(LevelId::L1d));
            bus.emit(TxnEvent::Miss(LevelId::Llc));
            bus.span_record(Stage::L2, k, k + 9);
            stats.add(Counter::L1dHit, 1);
            if let Some(obs) = bus.observer_mut() {
                obs.record_callback(k % 500);
                obs.record_txn(k, Some(k), Some(k + 2), None, None, k + 60);
                if k % 64 == 0 {
                    // Epoch sampling wraps the sample ring several times
                    // over; it must stay slot-writes only.
                    obs.sample_epoch(k / 64, k, &stats, k as f64, 3);
                }
            }
        }
    });
    assert_eq!(n, 0, "armed observer recording allocated");
    let obs = bus.observer().expect("observer still attached");
    assert_eq!(obs.ring.total(), 2 * 4096);
    assert_eq!(obs.metrics.total_samples(), 64);
}

#[test]
fn prefetcher_observe_is_allocation_free() {
    let mut p = StridePrefetcher::new(PrefetchConfig::default());
    // Train every region the loop below revisits (stream-table churn in
    // the steady state reuses existing slots).
    for k in 0..64u64 {
        p.observe(k * LINE_BYTES);
    }
    let n = allocs_in(|| {
        for k in 64..4096u64 {
            let batch = p.observe(k * LINE_BYTES);
            assert!(batch.len() <= 8);
        }
    });
    assert_eq!(n, 0, "StridePrefetcher::observe allocated");
}

/// The lane engine's speculative probe discipline — capture a
/// [`SlotUndo`] *before* the access, restore the slot and the global
/// touch stamp on abort — must be allocation-free on hits and misses
/// alike, and stay so when the victim path (batched SRRIP aging sweeps
/// included) runs with an armed observer on the accounting bus.
#[test]
fn lane_undo_and_victim_walk_are_allocation_free() {
    use tako_core::hierarchy::CachePort;
    use tako_sim::event::{AccountingBus, LevelId, SinkTap};
    use tako_sim::fault::FaultInjector;
    use tako_sim::trace::Observer;

    for armed in [false, true] {
        let mut a = array(ReplPolicy::Trrip);
        let mut bus = AccountingBus::new(FaultInjector::new(None));
        if armed {
            bus.tap = SinkTap::Observer(Box::new(Observer::new()));
        }
        for k in 0..2048u64 {
            let line = k * LINE_BYTES;
            if a.probe(line).is_none() {
                a.insert(line, k % 3 == 0, false, InsertKind::Demand, 0);
            }
        }
        let n = allocs_in(|| {
            for k in 0..4096u64 {
                let line = (k % 3072) * LINE_BYTES;
                // Speculative probe: undo capture, access, rollback.
                let undo = a.slot_undo(line);
                let stamp = a.touch_stamp();
                let hit = {
                    let mut port = CachePort::new(&mut a, LevelId::L2);
                    port.lookup_counted(line, &mut bus).is_some()
                };
                if k % 2 == 0 {
                    // Abort path: the array must roll back bit-exactly.
                    if let Some(u) = undo {
                        a.restore_slot(u);
                    }
                    a.set_touch_stamp(stamp);
                } else if !hit {
                    // Commit path: inserts evict (the array is past
                    // capacity), driving victim selection and the
                    // batched replacement-state aging sweep.
                    a.insert(line, k % 5 == 0, false, InsertKind::Demand, k);
                }
            }
        });
        assert_eq!(
            n, 0,
            "lane undo/victim walk allocated (observer armed: {armed})"
        );
    }
}
