//! End-to-end integration tests spanning the whole workspace: Morph
//! registration through the facade, case-study functional equivalence,
//! and system-level invariants.

use tako::core::{EngineCtx, Morph, MorphLevel, TakoSystem};
use tako::cpu::{AccessKind, MemSystem};
use tako::graph::pagerank;
use tako::sim::config::{SystemConfig, LINE_BYTES};
use tako::sim::rng::Rng;
use tako::sim::stats::Counter;
use tako::workloads::{decompress, hats, nvm, phi, sidechannel};

#[test]
fn facade_reexports_are_usable() {
    struct Nop;
    impl Morph for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
            let v = ctx.arg();
            ctx.line_fill_u64(7, &[v]);
        }
    }
    let mut sys = TakoSystem::new(SystemConfig::default_16core());
    let h = sys
        .register_phantom(MorphLevel::Shared, 4096, Box::new(Nop))
        .expect("register through facade");
    let (v, _) = sys.debug_read_u64(5, h.range().base, 0);
    assert_eq!(v, 7);
}

#[test]
fn a_morph_free_system_is_a_plain_multicore() {
    // täkō must add nothing to conventional loads and stores: the same
    // access sequence costs exactly the same cycles with and without the
    // (unused) täkō machinery exercised elsewhere in the address space.
    let run = |register: bool| -> (u64, u64) {
        struct Nop;
        impl Morph for Nop {
            fn name(&self) -> &str {
                "nop"
            }
        }
        let mut sys = TakoSystem::new(SystemConfig::default_16core());
        let data = sys.alloc_real(1 << 20);
        if register {
            sys.register_phantom(MorphLevel::Private, 4096, Box::new(Nop))
                .expect("register");
        }
        let mut t = 0;
        for i in 0..4096u64 {
            t = sys.timed_access(0, AccessKind::Read, data.base + (i * 192) % data.size, t);
        }
        (t, sys.stats_view().dram_accesses())
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn all_pagerank_implementations_agree() {
    // PHI (4 variants) and HATS (4 variants) must produce the exact
    // ranks/sums of the host-side reference on the same graph.
    let phi_params = phi::Params {
        vertices: 1024,
        edges: 8192,
        theta: 0.6,
        threads: 3,
        threshold: 3,
        seed: 99,
        lanes: 0,
    };
    let mut rng = Rng::new(phi_params.seed);
    let g = tako::graph::gen::power_law(
        phi_params.vertices,
        phi_params.edges,
        phi_params.theta,
        &mut rng,
    );
    let init = vec![1.0 / phi_params.vertices as f64; phi_params.vertices];
    let reference = pagerank::iteration(&g, &init);
    let cfg = SystemConfig::default_16core();
    for v in phi::Variant::ALL {
        let r = phi::run_on_graph(v, &phi_params, &cfg, &g);
        assert!(
            pagerank::max_diff(&r.ranks, &reference) < 1e-9,
            "phi {} diverged",
            v.label()
        );
    }

    let hats_params = hats::Params {
        vertices: 1024,
        edges: 8192,
        communities: 8,
        p_intra: 0.9,
        block: 16,
        depth_bound: 16,
        seed: 99,
    };
    let mut rng = Rng::new(hats_params.seed);
    let g2 = tako::graph::gen::community_blocked(
        hats_params.vertices,
        hats_params.edges,
        hats_params.communities,
        hats_params.p_intra,
        hats_params.block,
        &mut rng,
    );
    let init2 = vec![1.0 / hats_params.vertices as f64; hats_params.vertices];
    let ref2 = pagerank::iteration(&g2, &init2);
    let base = (1.0 - pagerank::DAMPING) / hats_params.vertices as f64;
    let expect: Vec<f64> = ref2.iter().map(|x| x - base).collect();
    for v in hats::Variant::ALL {
        let r = hats::run_on_graph(v, &hats_params, &cfg, &g2);
        assert!(
            pagerank::max_diff(&r.next, &expect) < 1e-9,
            "hats {} diverged",
            v.label()
        );
    }
}

#[test]
fn decompression_and_nvm_functional_equivalence() {
    let cfg = SystemConfig::default_16core();
    let dp = decompress::Params {
        values: 1024,
        accesses: 2048,
        theta: 0.9,
        seed: 1,
    };
    for v in decompress::Variant::ALL {
        let r = decompress::run(v, dp, &cfg);
        assert!((r.average - r.expected).abs() < 1e-9, "{}", v.label());
    }
    let np = nvm::Params {
        txn_bytes: 2048,
        txns: 4,
        seed: 2,
    };
    for v in nvm::Variant::ALL {
        assert!(nvm::run(v, np, &cfg).data_correct, "{}", v.label());
    }
}

#[test]
fn tako_wins_where_the_paper_says_it_wins() {
    let cfg = SystemConfig::default_16core();
    // Decompression: täkō fastest, NDC hurts (Fig 6).
    let dp = decompress::Params {
        values: 4096,
        accesses: 8192,
        theta: 0.99,
        seed: 5,
    };
    let sw = decompress::run(decompress::Variant::Software, dp, &cfg);
    let tk = decompress::run(decompress::Variant::Tako, dp, &cfg);
    let ndc = decompress::run(decompress::Variant::Ndc, dp, &cfg);
    assert!(tk.run.cycles < sw.run.cycles, "täkō beats software");
    assert!(ndc.run.cycles > sw.run.cycles, "NDC hurts (Fig 6)");
    assert!(tk.run.energy_uj < sw.run.energy_uj, "täkō saves energy");

    // NVM: in-cache transactions beat journaling (Fig 19).
    let np = nvm::Params {
        txn_bytes: 8 * 1024,
        txns: 8,
        seed: 6,
    };
    let base = nvm::run(nvm::Variant::Journaling, np, &cfg);
    let tako = nvm::run(nvm::Variant::Tako, np, &cfg);
    assert!(tako.run.cycles * 3 < base.run.cycles * 2, "≥1.5x speedup");
    assert_eq!(tako.journal_writes, 0);
}

#[test]
fn sidechannel_defense_end_to_end() {
    let cfg = SystemConfig::default_16core();
    let params = sidechannel::Params {
        rounds: 48,
        ..sidechannel::Params::default()
    };
    let base = sidechannel::run(sidechannel::Variant::Baseline, params, &cfg);
    let tako = sidechannel::run(sidechannel::Variant::Tako, params, &cfg);
    assert!(base.attacker_accuracy() > 0.8, "attack works undefended");
    assert!(tako.interrupts > 0, "alarm fires");
    assert!(
        tako.rounds_leaked_before_detection() <= 3,
        "defense engages within the first rounds"
    );
}

#[test]
fn interleaved_morphs_do_not_interfere() {
    // Two Morph instances of different types registered simultaneously
    // (Sec 4.2) keep their semantics separate.
    struct Fill(u64);
    impl Morph for Fill {
        fn name(&self) -> &str {
            "fill"
        }
        fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
            let v = ctx.arg();
            ctx.line_fill_u64(self.0, &[v]);
        }
    }
    let mut sys = TakoSystem::new(SystemConfig::default_16core());
    let a = sys
        .register_phantom(MorphLevel::Private, 64 * LINE_BYTES, Box::new(Fill(0xA)))
        .expect("a");
    let b = sys
        .register_phantom(MorphLevel::Shared, 64 * LINE_BYTES, Box::new(Fill(0xB)))
        .expect("b");
    let mut t = 0;
    for i in 0..64u64 {
        let (va, d1) = sys.debug_read_u64(1, a.range().base + i * LINE_BYTES, t);
        let (vb, d2) = sys.debug_read_u64(2, b.range().base + i * LINE_BYTES, d1);
        assert_eq!(va, 0xA);
        assert_eq!(vb, 0xB);
        t = d2;
    }
    assert_eq!(sys.stats_view().get(Counter::CbOnMiss), 128);
}
