//! Quickstart: define a Morph, register a phantom range, and watch
//! cache-triggered callbacks define the semantics of loads.
//!
//! Run with: `cargo run --release --example quickstart`

use tako::core::{CallbackKind, EngineCtx, Morph, MorphLevel, TakoSystem};
use tako::sim::config::SystemConfig;
use tako::sim::stats::Counter;

/// A polymorphic cache hierarchy whose phantom lines materialize as the
/// squares of their word indices — computed by `onMiss` on the engine,
/// then memoized by the cache like any other data.
struct Squares {
    misses: u64,
    evictions: u64,
}

impl Morph for Squares {
    fn name(&self) -> &str {
        "squares"
    }

    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        self.misses += 1;
        let first = ctx.offset() / 8;
        let dep = ctx.arg();
        let mut vals = [0u64; 8];
        for (i, v) in vals.iter_mut().enumerate() {
            let k = first + i as u64;
            *v = k * k;
        }
        // One SIMD multiply + one SIMD line write on the fabric.
        let sq = ctx.alu(&[dep]);
        ctx.line_write_all_u64(&vals, &[sq]);
    }

    fn on_eviction(&mut self, ctx: &mut EngineCtx<'_>) {
        self.evictions += 1;
        debug_assert_eq!(ctx.kind(), CallbackKind::OnEviction);
    }
}

fn main() -> Result<(), tako::core::TakoError> {
    let mut sys = TakoSystem::new(SystemConfig::default_16core());

    // Register a 64 KB phantom range at the private L2 of tile 0.
    let handle = sys.register_phantom(
        MorphLevel::Private,
        64 * 1024,
        Box::new(Squares {
            misses: 0,
            evictions: 0,
        }),
    )?;
    let base = handle.range().base;
    println!("registered '{:?}' on phantom range {:#x}", handle, base);

    // Read through the phantom range: the first touch of each line runs
    // onMiss on the engine; re-reads hit in the cache.
    let mut t = 0;
    for k in [3u64, 100, 3, 5, 100, 8191, 3] {
        let (v, done) = sys.debug_read_u64(0, base + k * 8, t);
        println!("  word {k:>5} = {v:>10}   ({} cycles)", done - t);
        assert_eq!(v, k * k);
        t = done + 100;
    }

    let stats = sys.stats_view();
    println!("\nonMiss callbacks : {}", stats.get(Counter::CbOnMiss));
    println!("L1d hits         : {}", stats.get(Counter::L1dHit));
    println!(
        "DRAM accesses    : {} (phantom data never touches memory)",
        stats.dram_accesses()
    );

    // flushData: evict everything, then unregister.
    let done = sys.flush_data(handle, t);
    let (morph, _) = sys.unregister(handle, done)?;
    drop(morph);
    println!(
        "flushed {} lines",
        sys.stats_view().get(Counter::FlushedLines)
    );
    Ok(())
}
