//! Transactions on direct-access NVM (Sec 8.3): "the cache is the
//! journal". Sweeps transaction sizes across the L2 capacity boundary.
//!
//! Run with: `cargo run --release --example nvm_transactions`

use tako::sim::config::SystemConfig;
use tako::workloads::nvm::{run, Params, Variant};

fn main() {
    let cfg = SystemConfig::default_16core();
    println!(
        "{:<8} {:>9} {:>9} {:>14} {:>16}",
        "txn", "speedup", "energy", "journal-writes", "instrs/8B (c+e)"
    );
    for kb in [1u64, 4, 16, 64, 128] {
        let params = Params {
            txn_bytes: kb * 1024,
            txns: (2048 / kb).clamp(4, 128),
            seed: 7,
        };
        let base = run(Variant::Journaling, params, &cfg);
        let tako = run(Variant::Tako, params, &cfg);
        assert!(base.data_correct && tako.data_correct);
        println!(
            "{:<8} {:>8.2}x {:>8.0}% {:>14} {:>9.2}+{:<5.2}",
            format!("{kb}KB"),
            base.run.cycles as f64 / tako.run.cycles as f64,
            100.0 * tako.run.energy_uj / base.run.energy_uj,
            tako.journal_writes,
            tako.core_instrs_per_word,
            tako.engine_instrs_per_word,
        );
    }
    println!("\n(while a transaction fits the 128 KB L2, no line is evicted");
    println!(" before commit and journaling vanishes; beyond it, täkō falls");
    println!(" back to engine-side journaling, off the core's critical path)");
}
