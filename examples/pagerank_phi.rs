//! PHI on täkō (Sec 8.1): one push-based PageRank iteration where the
//! shared cache becomes a write-combining buffer for commutative
//! scatter-updates. Prints the per-phase breakdown of Fig 14.
//!
//! Run with: `cargo run --release --example pagerank_phi`

use tako::graph::pagerank;
use tako::sim::config::SystemConfig;
use tako::sim::rng::Rng;
use tako::sim::stats::Counter;
use tako::workloads::phi::{run_on_graph, Params, Variant};

fn main() {
    let params = Params {
        vertices: 256 * 1024,
        edges: 1 << 20,
        theta: 0.6,
        threads: 16,
        threshold: 3,
        seed: 42,
        lanes: 0,
    };
    // Preserve the paper's vertex-data : LLC ratio at this scale.
    let mut cfg = SystemConfig::default_16core();
    cfg.llc_bank.size_bytes = 64 * 1024;

    let mut rng = Rng::new(params.seed);
    let g = tako::graph::gen::power_law(params.vertices, params.edges, params.theta, &mut rng);
    let reference = {
        let init = vec![1.0 / params.vertices as f64; params.vertices];
        pagerank::iteration(&g, &init)
    };

    println!(
        "PageRank: {} vertices, {} edges, {} threads\n",
        params.vertices, params.edges, params.threads
    );
    println!(
        "{:<16} {:>10} {:>8}  {:>9} {:>9} {:>9}",
        "variant", "cycles", "speedup", "edge-DRAM", "bin-DRAM", "vtx-DRAM"
    );
    let base = run_on_graph(Variant::Software, &params, &cfg, &g);
    for v in Variant::ALL {
        let r = run_on_graph(v, &params, &cfg, &g);
        let diff = pagerank::max_diff(&r.ranks, &reference);
        assert!(diff < 1e-9, "ranks must match the host reference");
        let ph = r.run.stats.phases();
        println!(
            "{:<16} {:>10} {:>7.2}x  {:>9} {:>9} {:>9}",
            v.label(),
            r.run.cycles,
            base.run.cycles as f64 / r.run.cycles as f64,
            ph[0].dram_accesses,
            ph[1].dram_accesses,
            ph[2].dram_accesses,
        );
        if v == Variant::Tako {
            println!(
                "{:<16} ({} updates applied in place, {} binned)",
                "",
                r.run.get(Counter::PhiInPlace),
                r.run.get(Counter::PhiBinned)
            );
        }
    }
}
