//! Detecting a prime+probe side-channel attack (Sec 8.4): the victim's
//! `onEviction` Morph turns previously invisible data movement into a
//! user-space interrupt, and the defense engages before the secret leaks.
//!
//! Run with: `cargo run --release --example attack_detector`

use tako::sim::config::SystemConfig;
use tako::workloads::sidechannel::{run, Params, Variant};

fn trace_line(touched: &[bool], inferred: &[bool]) -> String {
    touched
        .iter()
        .zip(inferred)
        .take(60)
        .map(|(&t, &i)| match (t, i) {
            (true, true) => 'X',
            (true, false) => 'o',
            (false, true) => '!',
            (false, false) => '.',
        })
        .collect()
}

fn main() {
    let cfg = SystemConfig::default_16core();
    let params = Params::default();

    println!("prime+probe on the shared LLC, {} rounds\n", params.rounds);
    for (label, variant) in [
        ("baseline (unprotected)", Variant::Baseline),
        ("täkō (eviction alarm) ", Variant::Tako),
    ] {
        let r = run(variant, params, &cfg);
        println!("{label}:");
        println!("  trace     {}", trace_line(&r.touched, &r.inferred));
        println!(
            "  attacker accuracy {:.1}%  interrupts {}  defense at round {}",
            100.0 * r.attacker_accuracy(),
            r.interrupts,
            r.detected_at
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!("\n(X = secret access leaked to the attacker, o = hidden,");
    println!(" ! = false positive, . = quiet round. On täkō the alarm fires");
    println!(" on the first priming eviction and the victim goes constant-time.)");
}
