//! The paper's motivating example (Sec 3): a lossily-compressed data set
//! decompressed on demand by `onMiss`, with the caches memoizing the
//! decompressed lines. Compares all five implementations.
//!
//! Run with: `cargo run --release --example compressed_array`

use tako::sim::config::SystemConfig;
use tako::workloads::decompress::{run, Params, Variant};

fn main() {
    let params = Params::default(); // 16 K values, 32 K Zipfian accesses
    let cfg = SystemConfig::default_16core();
    println!(
        "averaging {} compressed values over {} Zipfian accesses\n",
        params.values, params.accesses
    );

    let base = run(Variant::Software, params, &cfg);
    println!(
        "{:<12} {:>10} {:>9} {:>8} {:>14}",
        "variant", "cycles", "speedup", "energy", "decompressions"
    );
    for v in Variant::ALL {
        let r = run(v, params, &cfg);
        assert!(
            (r.average - r.expected).abs() < 1e-9,
            "every variant computes the same average"
        );
        println!(
            "{:<12} {:>10} {:>8.2}x {:>7.0}% {:>14}",
            v.label(),
            r.run.cycles,
            base.run.cycles as f64 / r.run.cycles as f64,
            100.0 * r.run.energy_uj / base.run.energy_uj,
            r.decompressions,
        );
    }
    println!("\n(täkō memoizes decompressions in-cache: fewer decompressions,");
    println!(" lower energy; NDC recomputes on every access and loses.)");
}
