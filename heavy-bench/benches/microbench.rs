//! Criterion microbenchmarks of the simulator's core data structures:
//! cache arrays, the dataflow fabric, the engine scheduler, the DRAM
//! model, and the deterministic RNG/Zipfian samplers. These guard the
//! simulator's own performance (millions of these operations run per
//! simulated second).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tako_cache::array::{CacheArray, InsertKind};
use tako_core::engine::Engine;
use tako_dataflow::Fabric;
use tako_mem::dram::Dram;
use tako_sim::config::{CacheConfig, EngineConfig, MemConfig};
use tako_sim::rng::{Rng, Zipfian};
use tako_sim::stats::Stats;

fn bench_cache_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_array");
    g.bench_function("probe_touch_hit", |b| {
        let mut a = CacheArray::new(CacheConfig::l2_default());
        for k in 0..2048u64 {
            a.insert(k * 64, false, false, InsertKind::Demand, 0);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 2048;
            black_box(a.touch(black_box(k * 64)))
        });
    });
    g.bench_function("insert_evict", |b| {
        let mut a = CacheArray::new(CacheConfig::l2_default());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(a.insert(k * 64, k.is_multiple_of(3), false, InsertKind::Demand, 0))
        });
    });
    g.bench_function("insert_evict_trrip_morph", |b| {
        let mut a = CacheArray::new(CacheConfig::l2_default());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(a.insert(k * 64, false, k.is_multiple_of(2), InsertKind::Engine, 0))
        });
    });
    g.finish();
}

fn bench_dataflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow");
    g.bench_function("callback_8loads_4alu", |b| {
        let mut fabric = Fabric::new(EngineConfig::default_5x5());
        let mut t0 = 0u64;
        b.iter(|| {
            t0 += 10;
            let mut t = fabric.begin(t0);
            let a = t.alu(&[]);
            let mut deps = Vec::with_capacity(8);
            for _ in 0..8 {
                let f = t.mem_fire(&[a]);
                deps.push(t.mem_complete(f + 20));
            }
            let s = t.alu(&deps);
            let _ = t.alu(&[s]);
            black_box(t.finish())
        });
    });
    g.finish();
}

fn bench_engine_scheduler(c: &mut Criterion) {
    c.bench_function("engine_admit_complete", |b| {
        let mut e = Engine::new(EngineConfig::default_5x5());
        let mut stats = Stats::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 5;
            let line = (t % 4096) * 64;
            let start = e.admit(0, line, t, false, &mut stats);
            e.complete(0, line, start, start + 30, false, &mut stats);
            black_box(start)
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_read_line", |b| {
        let mut d = Dram::new(MemConfig::default());
        let mut stats = Stats::new();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(d.read_line(k * 64, k * 3, &mut stats))
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("xoshiro_u64", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.bench_function("zipfian_sample", |b| {
        let z = Zipfian::new(16 * 1024, 0.99);
        let mut rng = Rng::new(2);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
    g.finish();
}

/// The pre-refactor array-of-structs tag layout, kept here as the
/// baseline for the SoA comparison: one 32-byte record per line, so a
/// set scan strides across tags, flags, and replacement state together
/// and an aging sweep rewrites whole records.
mod aos {
    #[derive(Clone, Copy, Default)]
    pub struct Entry {
        pub tag: u64,
        pub valid: bool,
        pub dirty: bool,
        pub rrpv: u8,
        pub lru: u64,
    }

    pub struct AosArray {
        pub sets: usize,
        pub ways: usize,
        entries: Vec<Entry>,
        stamp: u64,
    }

    impl AosArray {
        pub fn new(sets: usize, ways: usize) -> Self {
            AosArray {
                sets,
                ways,
                entries: vec![Entry::default(); sets * ways],
                stamp: 0,
            }
        }

        fn set_of(&self, line: u64) -> usize {
            ((line / 64) as usize) & (self.sets - 1)
        }

        pub fn lookup(&mut self, line: u64) -> bool {
            let s = self.set_of(line);
            self.stamp += 1;
            let base = s * self.ways;
            for e in &mut self.entries[base..base + self.ways] {
                if e.valid && e.tag == line {
                    e.rrpv = 0;
                    e.lru = self.stamp;
                    return true;
                }
            }
            false
        }

        pub fn insert(&mut self, line: u64, dirty: bool) {
            let s = self.set_of(line);
            self.stamp += 1;
            let base = s * self.ways;
            loop {
                let mut victim = None;
                for (w, e) in self.entries[base..base + self.ways].iter().enumerate() {
                    if !e.valid || e.rrpv >= 3 {
                        victim = Some(w);
                        break;
                    }
                }
                if let Some(w) = victim {
                    self.entries[base + w] = Entry {
                        tag: line,
                        valid: true,
                        dirty,
                        rrpv: 2,
                        lru: self.stamp,
                    };
                    return;
                }
                for e in &mut self.entries[base..base + self.ways] {
                    e.rrpv += 1;
                }
            }
        }
    }
}

/// SoA vs AoS set scans, the data-layout change behind the hot-path
/// rework: same replacement discipline, same working sets, so the
/// delta is purely how the tag/flag/replacement planes sit in memory.
fn bench_soa_vs_aos(c: &mut Criterion) {
    let mut g = c.benchmark_group("soa_vs_aos");
    let cfg = CacheConfig::l2_default();
    let sets = cfg.size_bytes / 64 / cfg.ways;
    // Hit scans: every probe finds its line after a full set walk.
    g.bench_function("soa_lookup_hit", |b| {
        let mut a = CacheArray::new(cfg);
        for k in 0..(sets * cfg.ways) as u64 {
            a.insert(k * 64, false, false, InsertKind::Demand, 0);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % (sets * cfg.ways) as u64;
            black_box(a.lookup(black_box(k * 64)).is_some())
        });
    });
    g.bench_function("aos_lookup_hit", |b| {
        let mut a = aos::AosArray::new(sets, cfg.ways);
        for k in 0..(sets * cfg.ways) as u64 {
            a.insert(k * 64, false);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % (sets * cfg.ways) as u64;
            black_box(a.lookup(black_box(k * 64)))
        });
    });
    // Miss scans: full set walk with no match (the victim-probe shape).
    g.bench_function("soa_lookup_miss", |b| {
        let mut a = CacheArray::new(cfg);
        for k in 0..(sets * cfg.ways) as u64 {
            a.insert(k * 64, false, false, InsertKind::Demand, 0);
        }
        let mut k = 1u64 << 40;
        b.iter(|| {
            k += 64;
            black_box(a.lookup(black_box(k)).is_some())
        });
    });
    g.bench_function("aos_lookup_miss", |b| {
        let mut a = aos::AosArray::new(sets, cfg.ways);
        for k in 0..(sets * cfg.ways) as u64 {
            a.insert(k * 64, false);
        }
        let mut k = 1u64 << 40;
        b.iter(|| {
            k += 64;
            black_box(a.lookup(black_box(k)))
        });
    });
    // Insert/evict churn: victim selection plus the aging sweep.
    g.bench_function("soa_insert_evict", |b| {
        let mut a = CacheArray::new(cfg);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(a.insert(k * 64, k.is_multiple_of(3), false, InsertKind::Demand, 0))
        });
    });
    g.bench_function("aos_insert_evict", |b| {
        let mut a = aos::AosArray::new(sets, cfg.ways);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            a.insert(k * 64, k.is_multiple_of(3));
            black_box(&a)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_array,
    bench_soa_vs_aos,
    bench_dataflow,
    bench_engine_scheduler,
    bench_dram,
    bench_rng
);
criterion_main!(benches);
