//! Criterion microbenchmarks of the simulator's core data structures:
//! cache arrays, the dataflow fabric, the engine scheduler, the DRAM
//! model, and the deterministic RNG/Zipfian samplers. These guard the
//! simulator's own performance (millions of these operations run per
//! simulated second).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tako_cache::array::{CacheArray, InsertKind};
use tako_core::engine::Engine;
use tako_dataflow::Fabric;
use tako_mem::dram::Dram;
use tako_sim::config::{CacheConfig, EngineConfig, MemConfig};
use tako_sim::rng::{Rng, Zipfian};
use tako_sim::stats::Stats;

fn bench_cache_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_array");
    g.bench_function("probe_touch_hit", |b| {
        let mut a = CacheArray::new(CacheConfig::l2_default());
        for k in 0..2048u64 {
            a.insert(k * 64, false, false, InsertKind::Demand, 0);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 2048;
            black_box(a.touch(black_box(k * 64)))
        });
    });
    g.bench_function("insert_evict", |b| {
        let mut a = CacheArray::new(CacheConfig::l2_default());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(a.insert(k * 64, k.is_multiple_of(3), false, InsertKind::Demand, 0))
        });
    });
    g.bench_function("insert_evict_trrip_morph", |b| {
        let mut a = CacheArray::new(CacheConfig::l2_default());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(a.insert(k * 64, false, k.is_multiple_of(2), InsertKind::Engine, 0))
        });
    });
    g.finish();
}

fn bench_dataflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow");
    g.bench_function("callback_8loads_4alu", |b| {
        let mut fabric = Fabric::new(EngineConfig::default_5x5());
        let mut t0 = 0u64;
        b.iter(|| {
            t0 += 10;
            let mut t = fabric.begin(t0);
            let a = t.alu(&[]);
            let mut deps = Vec::with_capacity(8);
            for _ in 0..8 {
                let f = t.mem_fire(&[a]);
                deps.push(t.mem_complete(f + 20));
            }
            let s = t.alu(&deps);
            let _ = t.alu(&[s]);
            black_box(t.finish())
        });
    });
    g.finish();
}

fn bench_engine_scheduler(c: &mut Criterion) {
    c.bench_function("engine_admit_complete", |b| {
        let mut e = Engine::new(EngineConfig::default_5x5());
        let mut stats = Stats::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 5;
            let line = (t % 4096) * 64;
            let start = e.admit(0, line, t, false, &mut stats);
            e.complete(0, line, start, start + 30, false, &mut stats);
            black_box(start)
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_read_line", |b| {
        let mut d = Dram::new(MemConfig::default());
        let mut stats = Stats::new();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(d.read_line(k * 64, k * 3, &mut stats))
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("xoshiro_u64", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.bench_function("zipfian_sample", |b| {
        let z = Zipfian::new(16 * 1024, 0.99);
        let mut rng = Rng::new(2);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_array,
    bench_dataflow,
    bench_engine_scheduler,
    bench_dram,
    bench_rng
);
criterion_main!(benches);
