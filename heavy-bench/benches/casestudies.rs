//! Criterion benchmarks of the end-to-end case studies at small scale:
//! one sample per variant, sized so the whole suite completes in a few
//! minutes. These exist so `cargo bench --workspace` exercises the full
//! simulator; the figure harnesses in `src/bin/` produce the paper's
//! actual series at realistic scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tako_sim::config::SystemConfig;
use tako_workloads::{decompress, hats, nvm, phi, sidechannel};

fn bench_decompress(c: &mut Criterion) {
    let mut g = c.benchmark_group("decompress");
    g.sample_size(10);
    let params = decompress::Params {
        values: 2048,
        accesses: 4096,
        theta: 0.99,
        seed: 1,
    };
    let cfg = SystemConfig::default_16core();
    for v in [decompress::Variant::Software, decompress::Variant::Tako] {
        g.bench_function(v.label(), |b| {
            b.iter(|| black_box(decompress::run(v, params, &cfg)))
        });
    }
    g.finish();
}

fn bench_phi(c: &mut Criterion) {
    let mut g = c.benchmark_group("phi");
    g.sample_size(10);
    let params = phi::Params {
        vertices: 2048,
        edges: 16 * 1024,
        theta: 0.6,
        threads: 4,
        threshold: 3,
        seed: 2,
        lanes: 0,
    };
    let cfg = SystemConfig::default_16core();
    for v in [phi::Variant::Software, phi::Variant::Tako] {
        g.bench_function(v.label(), |b| {
            b.iter(|| black_box(phi::run(v, &params, &cfg)))
        });
    }
    g.finish();
}

fn bench_hats(c: &mut Criterion) {
    let mut g = c.benchmark_group("hats");
    g.sample_size(10);
    let params = hats::Params {
        vertices: 4096,
        edges: 32 * 1024,
        communities: 16,
        p_intra: 0.9,
        block: 16,
        depth_bound: 32,
        seed: 3,
    };
    let cfg = SystemConfig::default_16core();
    for v in [hats::Variant::VertexOrdered, hats::Variant::Tako] {
        g.bench_function(v.label(), |b| {
            b.iter(|| black_box(hats::run(v, &params, &cfg)))
        });
    }
    g.finish();
}

fn bench_nvm(c: &mut Criterion) {
    let mut g = c.benchmark_group("nvm");
    g.sample_size(10);
    let params = nvm::Params {
        txn_bytes: 4096,
        txns: 4,
        seed: 4,
    };
    let cfg = SystemConfig::default_16core();
    for v in [nvm::Variant::Journaling, nvm::Variant::Tako] {
        g.bench_function(v.label(), |b| {
            b.iter(|| black_box(nvm::run(v, params, &cfg)))
        });
    }
    g.finish();
}

fn bench_sidechannel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sidechannel");
    g.sample_size(10);
    let params = sidechannel::Params {
        rounds: 32,
        ..sidechannel::Params::default()
    };
    let cfg = SystemConfig::default_16core();
    g.bench_function("baseline", |b| {
        b.iter(|| {
            black_box(sidechannel::run(
                sidechannel::Variant::Baseline,
                params,
                &cfg,
            ))
        })
    });
    g.bench_function("tako", |b| {
        b.iter(|| {
            black_box(sidechannel::run(sidechannel::Variant::Tako, params, &cfg))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_decompress,
    bench_phi,
    bench_hats,
    bench_nvm,
    bench_sidechannel
);
criterion_main!(benches);
