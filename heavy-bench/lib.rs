//! Empty library target; this package exists only to host the opt-in
//! criterion benches in `benches/`. See Cargo.toml for why it is
//! excluded from the workspace.
